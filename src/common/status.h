#ifndef STREAMQ_COMMON_STATUS_H_
#define STREAMQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace streamq {

/// Error categories used across the library. Values are stable and may be
/// logged or serialized.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIOError = 9,
  kCancelled = 10,
};

/// Returns a short stable name for a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style operation outcome. The library does not throw
/// exceptions across API boundaries; fallible operations return a `Status`
/// (or a `Result<T>`, see below).
///
/// `Status` is cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored `Result` aborts the process (programming error).
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so functions can `return Status::...;`. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value, or `fallback` if errored.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

}  // namespace streamq

/// Propagates a non-OK Status from an expression, Arrow-style.
#define STREAMQ_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::streamq::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Evaluates a Result-returning expression; on error returns its Status,
/// otherwise assigns the value to `lhs`.
#define STREAMQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define STREAMQ_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define STREAMQ_ASSIGN_OR_RETURN_NAME(a, b) STREAMQ_ASSIGN_OR_RETURN_CAT(a, b)
#define STREAMQ_ASSIGN_OR_RETURN(lhs, expr)                                  \
  STREAMQ_ASSIGN_OR_RETURN_IMPL(                                             \
      STREAMQ_ASSIGN_OR_RETURN_NAME(_streamq_result_, __LINE__), lhs, expr)

#endif  // STREAMQ_COMMON_STATUS_H_
