#ifndef STREAMQ_COMMON_STATS_H_
#define STREAMQ_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"

namespace streamq {

/// Welford's online mean/variance accumulator.
class RunningMoments {
 public:
  void Add(double x);

  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void Merge(const RunningMoments& other);

  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance. Zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// `alpha` is the weight of the newest sample, in (0, 1].
  explicit Ewma(double alpha);

  void Add(double x);
  void Reset();

  bool empty() const { return !initialized_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-capacity uniform reservoir sample (Vitter's algorithm R).
class ReservoirSample {
 public:
  ReservoirSample(size_t capacity, uint64_t seed);

  void Add(double x);
  void Reset();

  int64_t seen() const { return seen_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Empirical quantile of the reservoir, q in [0, 1]. Returns 0 if empty.
  double Quantile(double q) const;

 private:
  size_t capacity_;
  Rng rng_;
  int64_t seen_ = 0;
  std::vector<double> samples_;
};

/// P² (Jain & Chlamtac) single-quantile streaming estimator: O(1) space,
/// no samples retained. Used where memory matters more than exactness.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95.
  explicit P2Quantile(double q);

  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  /// Current estimate; exact while count < 5.
  double value() const;

 private:
  double q_;
  int64_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Sliding-window quantile tracker over the last `capacity` samples.
/// Maintains a ring buffer plus an order-statistics-on-demand query.
/// This is the delay sketch the quality-driven buffer interrogates; window
/// semantics (recent samples only) are what let it follow non-stationary
/// delay distributions.
class SlidingWindowQuantile {
 public:
  explicit SlidingWindowQuantile(size_t capacity);

  void Add(double x);
  void Reset();

  size_t size() const { return window_.size(); }
  size_t capacity() const { return capacity_; }
  int64_t seen() const { return seen_; }

  /// Empirical quantile of the current window, q in [0, 1].
  /// Returns 0 if the window is empty. O(n) per call (copy into a reused
  /// scratch buffer + nth_element); callers query at control-loop cadence,
  /// not per tuple.
  double Quantile(double q) const;

  /// Fraction of windowed samples <= x (empirical CDF). Returns 1 if empty
  /// (optimistic prior: with no evidence of delay, everything is on time).
  double CdfAt(double x) const;

  double Max() const;
  double Mean() const;

 private:
  size_t capacity_;
  std::deque<double> window_;
  int64_t seen_ = 0;
  /// Reused by Quantile() to avoid per-call allocation.
  mutable std::vector<double> scratch_;
};

/// Summary of a latency/error series for report tables.
struct DistributionSummary {
  int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string ToString() const;
};

/// Computes exact percentiles from a full sample vector (sorts a copy).
DistributionSummary Summarize(const std::vector<double>& values);

/// Exact quantile of a sample vector (sorts a copy). q in [0, 1].
double ExactQuantile(std::vector<double> values, double q);

}  // namespace streamq

#endif  // STREAMQ_COMMON_STATS_H_
