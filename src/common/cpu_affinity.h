#ifndef STREAMQ_COMMON_CPU_AFFINITY_H_
#define STREAMQ_COMMON_CPU_AFFINITY_H_

#include "common/status.h"

namespace streamq {

/// Whether thread→core pinning is implemented on this platform (Linux with
/// pthreads). Callers use this to report, not to gate: PinCurrentThreadToCore
/// degrades to a no-op Status elsewhere.
bool CpuPinningSupported();

/// Number of logical cores visible to the process; always >= 1 (falls back
/// to 1 when the runtime cannot tell).
int LogicalCoreCount();

/// Pins the calling thread to logical core `core % LogicalCoreCount()`.
/// Returns Unimplemented where unsupported and Internal when the kernel
/// rejects the mask (e.g. a cgroup cpuset excludes the core). Pinning is a
/// placement *hint* for the runners: failures are recorded, never fatal.
Status PinCurrentThreadToCore(int core);

}  // namespace streamq

#endif  // STREAMQ_COMMON_CPU_AFFINITY_H_
