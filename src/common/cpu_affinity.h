#ifndef STREAMQ_COMMON_CPU_AFFINITY_H_
#define STREAMQ_COMMON_CPU_AFFINITY_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace streamq {

/// Whether thread→core pinning is implemented on this platform (Linux with
/// pthreads). Callers use this to report, not to gate: PinCurrentThreadToCore
/// degrades to a no-op Status elsewhere.
bool CpuPinningSupported();

/// Number of logical cores visible to the process; always >= 1 (falls back
/// to 1 when the runtime cannot tell).
int LogicalCoreCount();

/// Pins the calling thread to logical core `core % LogicalCoreCount()`.
/// Returns Unimplemented where unsupported and Internal when the kernel
/// rejects the mask (e.g. a cgroup cpuset excludes the core). Pinning is a
/// placement *hint* for the runners: failures are recorded, never fatal.
Status PinCurrentThreadToCore(int core);

/// Logical core the calling thread is executing on right now, or -1 where
/// the platform cannot tell. A scheduling-time sample, not a promise: the
/// thread may move unless pinned.
int CurrentCore();

/// Core→NUMA-node map. On Linux this is parsed once from
/// /sys/devices/system/node/node*/cpulist; everywhere else (and on
/// single-socket machines) it degrades to one node holding every core.
/// FromCpuLists builds a synthetic topology for tests, using the same
/// cpulist grammar the kernel emits ("0-3,8-11").
class NumaTopology {
 public:
  /// One node covering every logical core (the no-NUMA fallback).
  NumaTopology();

  /// The machine's topology, parsed once and cached for the process.
  static const NumaTopology& System();

  /// Synthetic topology: element i of `node_cpulists` is node i's cpulist.
  /// Malformed entries are InvalidArgument; an empty list means no nodes,
  /// which degrades to the single-node fallback.
  static Result<NumaTopology> FromCpuLists(
      const std::vector<std::string>& node_cpulists);

  int node_count() const { return static_cast<int>(nodes_); }

  /// NUMA node of `core`; 0 for cores the map does not cover (hotplug,
  /// fallback topology). Negative cores (CurrentCore() on an unsupported
  /// platform) land on node 0.
  int NodeOfCore(int core) const;

  /// NodeOfCore(CurrentCore()) — where the calling thread's memory should
  /// come from for first-touch locality.
  int NodeOfCurrentThread() const { return NodeOfCore(CurrentCore()); }

 private:
  size_t nodes_ = 1;
  std::vector<int> node_of_core_;  // Indexed by core; may be empty.
};

}  // namespace streamq

#endif  // STREAMQ_COMMON_CPU_AFFINITY_H_
