#include "common/cpu_affinity.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace streamq {

bool CpuPinningSupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

int LogicalCoreCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Status PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  if (core < 0) return Status::InvalidArgument("negative core index");
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core % LogicalCoreCount()), &set);
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    return Status::Internal("pthread_setaffinity_np failed, errno=" +
                            std::to_string(rc));
  }
  return Status::OK();
#else
  (void)core;
  return Status::Unimplemented("cpu pinning not supported on this platform");
#endif
}

int CurrentCore() {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  return cpu < 0 ? -1 : cpu;
#else
  return -1;
#endif
}

namespace {

/// Parses one kernel cpulist ("0-3,8,10-11") into core indices. The empty
/// string is a valid list of no cores (a memory-only NUMA node).
Status ParseCpuList(const std::string& text, std::vector<int>* out) {
  size_t i = 0;
  const auto read_int = [&](int* value) -> Status {
    const size_t start = i;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i == start) {
      return Status::InvalidArgument("bad cpulist '" + text + "'");
    }
    *value = std::atoi(text.substr(start, i - start).c_str());
    return Status::OK();
  };
  while (i < text.size()) {
    int lo = 0;
    STREAMQ_RETURN_NOT_OK(read_int(&lo));
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      STREAMQ_RETURN_NOT_OK(read_int(&hi));
    }
    if (hi < lo) {
      return Status::InvalidArgument("bad cpulist range in '" + text + "'");
    }
    for (int c = lo; c <= hi; ++c) out->push_back(c);
    if (i < text.size()) {
      if (text[i] != ',') {
        return Status::InvalidArgument("bad cpulist separator in '" + text +
                                       "'");
      }
      ++i;
    }
  }
  return Status::OK();
}

NumaTopology ReadSystemTopology() {
#if defined(__linux__)
  std::vector<std::string> lists;
  for (int node = 0;; ++node) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in.is_open()) break;
    std::string line;
    std::getline(in, line);
    // Trim trailing whitespace/newline the kernel appends.
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    lists.push_back(line);
  }
  if (!lists.empty()) {
    Result<NumaTopology> parsed = NumaTopology::FromCpuLists(lists);
    if (parsed.ok()) return parsed.value();
  }
#endif
  return NumaTopology();
}

}  // namespace

NumaTopology::NumaTopology() = default;

const NumaTopology& NumaTopology::System() {
  static const NumaTopology* topology = new NumaTopology(ReadSystemTopology());
  return *topology;
}

Result<NumaTopology> NumaTopology::FromCpuLists(
    const std::vector<std::string>& node_cpulists) {
  NumaTopology out;
  if (node_cpulists.empty()) return out;
  out.nodes_ = node_cpulists.size();
  for (size_t node = 0; node < node_cpulists.size(); ++node) {
    std::vector<int> cores;
    STREAMQ_RETURN_NOT_OK(ParseCpuList(node_cpulists[node], &cores));
    for (const int core : cores) {
      if (core >= static_cast<int>(out.node_of_core_.size())) {
        out.node_of_core_.resize(static_cast<size_t>(core) + 1, 0);
      }
      out.node_of_core_[static_cast<size_t>(core)] = static_cast<int>(node);
    }
  }
  return out;
}

int NumaTopology::NodeOfCore(int core) const {
  if (core < 0 || core >= static_cast<int>(node_of_core_.size())) return 0;
  return node_of_core_[static_cast<size_t>(core)];
}

}  // namespace streamq
