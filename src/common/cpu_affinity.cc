#include "common/cpu_affinity.h"

#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace streamq {

bool CpuPinningSupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

int LogicalCoreCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Status PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  if (core < 0) return Status::InvalidArgument("negative core index");
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core % LogicalCoreCount()), &set);
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    return Status::Internal("pthread_setaffinity_np failed, errno=" +
                            std::to_string(rc));
  }
  return Status::OK();
#else
  (void)core;
  return Status::Unimplemented("cpu pinning not supported on this platform");
#endif
}

}  // namespace streamq
