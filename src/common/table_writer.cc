#include "common/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace streamq {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  STREAMQ_CHECK(!columns_.empty());
}

void TableWriter::BeginRow() { rows_.emplace_back(); }

void TableWriter::Cell(const std::string& v) {
  STREAMQ_CHECK(!rows_.empty()) << "Cell() before BeginRow()";
  STREAMQ_CHECK_LT(rows_.back().size(), columns_.size());
  rows_.back().push_back(v);
}

void TableWriter::Cell(const char* v) { Cell(std::string(v)); }

void TableWriter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  Cell(std::string(buf));
}

void TableWriter::Cell(int64_t v) { Cell(std::to_string(v)); }

size_t TableWriter::row_count() const { return rows_.size(); }

std::string TableWriter::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      out << "  " << v;
      for (size_t pad = v.size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << "\n";
  };
  emit_row(columns_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TableWriter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TableWriter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace streamq
