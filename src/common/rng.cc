#include "common/rng.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace streamq {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::string FormatParams(const char* fmt, double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

std::string FormatParam(const char* fmt, double a) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a);
  return buf;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  STREAMQ_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string ConstantDelay::Describe() const {
  return FormatParam("constant(%.0fus)", value_);
}

std::string UniformDelay::Describe() const {
  return FormatParams("uniform[%.0f, %.0f)us", lo_, hi_);
}

double ExponentialDelay::Sample(Rng* rng) {
  double u = rng->NextDouble();
  while (u <= 1e-300) u = rng->NextDouble();
  return -mean_ * std::log(u);
}

std::string ExponentialDelay::Describe() const {
  return FormatParam("exponential(mean=%.0fus)", mean_);
}

double NormalDelay::Sample(Rng* rng) {
  const double v = mean_ + stddev_ * rng->NextGaussian();
  return v < 0.0 ? 0.0 : v;
}

std::string NormalDelay::Describe() const {
  return FormatParams("normal(mean=%.0fus, sd=%.0fus)", mean_, stddev_);
}

double LogNormalDelay::Sample(Rng* rng) {
  return std::exp(mu_ + sigma_ * rng->NextGaussian());
}

double LogNormalDelay::Mean() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

std::string LogNormalDelay::Describe() const {
  return FormatParams("lognormal(mu=%.2f, sigma=%.2f)", mu_, sigma_);
}

double ParetoDelay::Sample(Rng* rng) {
  double u = rng->NextDouble();
  while (u <= 1e-300) u = rng->NextDouble();
  return xm_ / std::pow(u, 1.0 / alpha_);
}

double ParetoDelay::Mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

std::string ParetoDelay::Describe() const {
  return FormatParams("pareto(xm=%.0fus, alpha=%.2f)", xm_, alpha_);
}

ZipfSampler::ZipfSampler(int64_t n, double s) : n_(n), s_(s) {
  STREAMQ_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[static_cast<size_t>(i)] = total;
  }
  for (auto& c : cdf_) c /= total;
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  // Binary search the CDF.
  int64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace streamq
