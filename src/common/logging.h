#ifndef STREAMQ_COMMON_LOGGING_H_
#define STREAMQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace streamq {

/// Severity levels for the library's minimal logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Not thread-synchronized: set it once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log message; writes on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a log statement when it is compiled out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace streamq

#define STREAMQ_LOG(level)                                          \
  ::streamq::internal::LogMessage(::streamq::LogLevel::k##level, \
                                  __FILE__, __LINE__)

/// Invariant checks. These stay enabled in release builds: in a stream
/// engine a silently-corrupt buffer is far worse than an abort.
#define STREAMQ_CHECK(cond)                                         \
  if (!(cond))                                                      \
  STREAMQ_LOG(Fatal) << "Check failed: " #cond " "

#define STREAMQ_CHECK_OP(a, b, op)                                          \
  if (!((a)op(b)))                                                          \
  STREAMQ_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a)      \
                     << " vs " << (b) << ") "

#define STREAMQ_CHECK_EQ(a, b) STREAMQ_CHECK_OP(a, b, ==)
#define STREAMQ_CHECK_NE(a, b) STREAMQ_CHECK_OP(a, b, !=)
#define STREAMQ_CHECK_LT(a, b) STREAMQ_CHECK_OP(a, b, <)
#define STREAMQ_CHECK_LE(a, b) STREAMQ_CHECK_OP(a, b, <=)
#define STREAMQ_CHECK_GT(a, b) STREAMQ_CHECK_OP(a, b, >)
#define STREAMQ_CHECK_GE(a, b) STREAMQ_CHECK_OP(a, b, >=)

/// Debug-only invariant checks for hot-path interiors where the release
/// check cost is measurable (per-tuple store probes). Compiled out under
/// NDEBUG; the condition is still parsed, so variables stay "used".
#ifdef NDEBUG
#define STREAMQ_DCHECK(cond) \
  if (true) {                \
  } else                     \
    STREAMQ_CHECK(cond)
#define STREAMQ_DCHECK_EQ(a, b) \
  if (true) {                   \
  } else                        \
    STREAMQ_CHECK_EQ(a, b)
#else
#define STREAMQ_DCHECK(cond) STREAMQ_CHECK(cond)
#define STREAMQ_DCHECK_EQ(a, b) STREAMQ_CHECK_EQ(a, b)
#endif

/// Aborts if a Status-returning expression fails. For use in examples,
/// benches and tests where the error is unrecoverable.
#define STREAMQ_CHECK_OK(expr)                                    \
  do {                                                            \
    ::streamq::Status _st = (expr);                               \
    STREAMQ_CHECK(_st.ok()) << _st.ToString();                    \
  } while (false)

#endif  // STREAMQ_COMMON_LOGGING_H_
