#include "common/time.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace streamq {

std::string FormatDuration(DurationUs d) {
  char buf[64];
  const double abs_d = std::abs(static_cast<double>(d));
  if (abs_d >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / 1e6);
  } else if (abs_d >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(d) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d));
  }
  return buf;
}

TimestampUs WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace streamq
