#ifndef STREAMQ_COMMON_METRICS_H_
#define STREAMQ_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace streamq {

/// Monotonic counter. Thread-safe: Increment and value are relaxed atomics
/// (per-metric ordering does not matter; Snapshot() reads are approximate
/// under concurrent writes, exact once writers quiesce).
class Counter {
 public:
  void Increment(int64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins gauge. Thread-safe.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one FixedHistogram, with enough structure to
/// export (bucket bounds + per-bucket counts) and to estimate quantiles.
struct HistogramSnapshot {
  /// Upper bound of each bucket (exclusive), ascending. The first entry is
  /// the underflow bound (= Options::min), the last is +infinity for the
  /// overflow bucket. `counts` is aligned: counts[i] tuples fell in
  /// [bounds[i-1], bounds[i]) with bounds[-1] = -infinity.
  std::vector<double> upper_bounds;
  std::vector<int64_t> counts;

  int64_t count = 0;
  double sum = 0.0;
  /// Exact extremes of everything recorded (0 when empty).
  double min = 0.0;
  double max = 0.0;

  /// Quantile estimate, q in [0, 1]: geometric interpolation within the
  /// containing log bucket, clamped to the exact [min, max] envelope.
  double Quantile(double q) const;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Bounded log-bucketed histogram: fixed memory regardless of stream
/// length, exact count/sum/min/max, quantile estimates with relative (not
/// absolute) bucket error. This is the production-path replacement for the
/// unbounded full-sample Series.
///
/// Buckets are log-spaced over [min, max) with one underflow bucket for
/// values < min (including zero and negatives) and one overflow bucket for
/// values >= max. Thread-safe: Record is wait-free relaxed atomics, so
/// concurrent pipelines may share one instance; Snapshot() taken during
/// concurrent writes is internally consistent to within in-flight updates.
class FixedHistogram {
 public:
  struct Options {
    /// Lower edge of the first log bucket (> 0); smaller values underflow.
    double min = 1.0;
    /// Upper edge of the last log bucket; larger values overflow.
    double max = 1e9;
    /// Number of log-spaced buckets between min and max.
    size_t buckets = 72;
  };

  /// Default-constructs with Options{} (defined out-of-line: the nested
  /// Options' member initializers are not usable inside this class body).
  FixedHistogram();
  explicit FixedHistogram(const Options& options);

  FixedHistogram(const FixedHistogram&) = delete;
  FixedHistogram& operator=(const FixedHistogram&) = delete;

  void Record(double x);
  /// Legacy spelling used by the stats-style classes.
  void Add(double x) { Record(x); }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min_seen() const;
  double max_seen() const;

  /// Quantile estimate (see HistogramSnapshot::Quantile).
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  HistogramSnapshot Snapshot() const;
  void Reset();

  const Options& options() const { return options_; }
  /// Total bucket count including underflow and overflow.
  size_t bucket_count() const { return num_buckets_ + 2; }

 private:
  size_t BucketIndex(double x) const;

  Options options_;
  size_t num_buckets_;
  double inv_log_gamma_;  // buckets / ln(max / min): index scale factor.
  double log_min_;
  /// [0] underflow, [1 .. num_buckets_] log buckets, [num_buckets_+1]
  /// overflow.
  std::unique_ptr<std::atomic<int64_t>[]> bucket_counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // Valid only when count_ > 0.
  std::atomic<double> max_{0.0};
};

/// Full-sample series metric: records every observation so that experiment
/// harnesses can compute exact percentiles. Memory grows without bound, so
/// the registry hands out *disabled* (no-op) series unless constructed with
/// enable_series — production paths should use FixedHistogram instead.
class Series {
 public:
  explicit Series(bool enabled = true) : enabled_(enabled) {}

  void Record(double v) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
  }
  bool enabled() const { return enabled_; }
  std::vector<double> values() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }
  DistributionSummary Summarize() const {
    return ::streamq::Summarize(values());
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
  }

 private:
  bool enabled_;
  mutable std::mutex mu_;
  std::vector<double> values_;
};

/// Immutable point-in-time view of a whole registry, with deterministic
/// text exporters (maps are name-sorted; numbers format identically across
/// runs, which is what makes the golden tests possible).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Present only for registries with enable_series.
  std::map<std::string, DistributionSummary> series;

  /// Prometheus text exposition format: counters/gauges verbatim,
  /// histograms as cumulative `_bucket{le=...}` lines plus `_sum`/`_count`,
  /// series as summary quantiles. Metric names are sanitized to
  /// [a-zA-Z0-9_:].
  std::string ToPrometheusText() const;

  /// Deterministic JSON document grouped by metric type.
  std::string ToJson() const;
};

/// Named registry of metrics owned by one pipeline (or shared by several:
/// every metric type is individually thread-safe, and registration is
/// mutex-protected, so concurrent recording + Snapshot() is safe).
class MetricsRegistry {
 public:
  struct Options {
    /// Full-sample Series metrics are evaluation-only; leave off in
    /// production so long streams cannot grow memory without bound.
    bool enable_series = false;
  };

  MetricsRegistry() = default;
  explicit MetricsRegistry(const Options& options) : options_(options) {}

  /// Returns the metric with `name`, creating it on first use. Returned
  /// pointers stay valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `options` applies on first creation only.
  FixedHistogram* histogram(
      const std::string& name,
      const FixedHistogram::Options& options = FixedHistogram::Options{});
  /// Disabled (records are dropped) unless Options::enable_series.
  Series* series(const std::string& name);

  /// Consistent point-in-time copy of every registered metric.
  MetricsSnapshot Snapshot() const;

  /// Renders all metrics as "name value" lines, sorted by name.
  std::string Report() const;

  void ResetAll();

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace streamq

#endif  // STREAMQ_COMMON_METRICS_H_
