#ifndef STREAMQ_COMMON_METRICS_H_
#define STREAMQ_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

namespace streamq {

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t by = 1) { value_ += by; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Full-sample series metric: records every observation so that experiment
/// harnesses can compute exact percentiles. For unbounded production use,
/// prefer `FixedHistogram`; the evaluation harness wants exactness.
class Series {
 public:
  void Record(double v) { values_.push_back(v); }
  const std::vector<double>& values() const { return values_; }
  DistributionSummary Summarize() const { return ::streamq::Summarize(values_); }
  void Reset() { values_.clear(); }

 private:
  std::vector<double> values_;
};

/// Named registry of metrics owned by one pipeline/operator. Single-threaded
/// by design (the engine is single-threaded per pipeline; see DESIGN.md).
class MetricsRegistry {
 public:
  /// Returns the counter with `name`, creating it on first use.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Series* series(const std::string& name);

  /// Renders all metrics as "name value" lines, sorted by name.
  std::string Report() const;

  void ResetAll();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace streamq

#endif  // STREAMQ_COMMON_METRICS_H_
