#include "common/metrics.h"

#include <cstdio>
#include <sstream>

namespace streamq {

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Series* MetricsRegistry::series(const std::string& name) {
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return slot.get();
}

std::string MetricsRegistry::Report() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g->value() << "\n";
  }
  for (const auto& [name, s] : series_) {
    out << name << " " << s->Summarize().ToString() << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, s] : series_) s->Reset();
}

}  // namespace streamq
