#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace streamq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void AtomicAdd(std::atomic<double>* a, double x) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double x) {
  double cur = a->load(std::memory_order_relaxed);
  while (x < cur &&
         !a->compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double x) {
  double cur = a->load(std::memory_order_relaxed);
  while (x > cur &&
         !a->compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

/// Deterministic, compact double formatting shared by both exporters (up to
/// 10 significant digits; integral values print without an exponent or
/// trailing zeros, e.g. 42, 0.5, 1.5e+10).
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Prometheus metric names may only use [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t c = counts[i];
    if (static_cast<double>(cum + c) >= target && c > 0) {
      // Underflow bucket: everything below the first bound; the exact min
      // is the best (and a conservative) answer.
      if (i == 0) return min;
      // Overflow bucket: bounded above only by the exact max.
      if (upper_bounds[i] == kInf) return max;
      const double lower = upper_bounds[i - 1];
      const double upper = upper_bounds[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      // Geometric interpolation: buckets are log-spaced, so the mid-bucket
      // position scales multiplicatively.
      const double v = lower * std::pow(upper / lower, frac);
      return std::clamp(v, min, max);
    }
    cum += c;
  }
  return max;
}

FixedHistogram::FixedHistogram() : FixedHistogram(Options{}) {}

FixedHistogram::FixedHistogram(const Options& options)
    : options_(options), num_buckets_(options.buckets) {
  STREAMQ_CHECK_GT(options.min, 0.0);
  STREAMQ_CHECK_GT(options.max, options.min);
  STREAMQ_CHECK_GT(options.buckets, 0u);
  inv_log_gamma_ = static_cast<double>(num_buckets_) /
                   std::log(options.max / options.min);
  log_min_ = std::log(options.min);
  bucket_counts_ =
      std::make_unique<std::atomic<int64_t>[]>(num_buckets_ + 2);
  for (size_t i = 0; i < num_buckets_ + 2; ++i) {
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  }
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

size_t FixedHistogram::BucketIndex(double x) const {
  if (!(x >= options_.min)) return 0;  // Also catches NaN.
  if (x >= options_.max) return num_buckets_ + 1;
  const double pos = (std::log(x) - log_min_) * inv_log_gamma_;
  auto idx = static_cast<size_t>(std::max(pos, 0.0));
  if (idx >= num_buckets_) idx = num_buckets_ - 1;  // FP boundary safety.
  return idx + 1;
}

void FixedHistogram::Record(double x) {
  bucket_counts_[BucketIndex(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, x);
  AtomicMin(&min_, x);
  AtomicMax(&max_, x);
}

double FixedHistogram::min_seen() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double FixedHistogram::max_seen() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

HistogramSnapshot FixedHistogram::Snapshot() const {
  HistogramSnapshot snap;
  const size_t n = num_buckets_ + 2;
  snap.upper_bounds.resize(n);
  snap.counts.resize(n);
  const double gamma = std::exp(1.0 / inv_log_gamma_);
  double bound = options_.min;
  snap.upper_bounds[0] = options_.min;
  for (size_t i = 1; i <= num_buckets_; ++i) {
    bound *= gamma;
    snap.upper_bounds[i] = std::min(bound, options_.max);
  }
  snap.upper_bounds[num_buckets_] = options_.max;  // Exact top edge.
  snap.upper_bounds[n - 1] = kInf;
  for (size_t i = 0; i < n; ++i) {
    snap.counts[i] = bucket_counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count();
  snap.sum = sum();
  snap.min = min_seen();
  snap.max = max_seen();
  return snap;
}

void FixedHistogram::Reset() {
  for (size_t i = 0; i < num_buckets_ + 2; ++i) {
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string n = PromName(name);
    out << "# TYPE " << n << " counter\n";
    out << n << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string n = PromName(name);
    out << "# TYPE " << n << " gauge\n";
    out << n << " " << FormatValue(value) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = PromName(name);
    out << "# TYPE " << n << " histogram\n";
    int64_t cum = 0;
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cum += h.counts[i];
      const bool inf = h.upper_bounds[i] == std::numeric_limits<double>::infinity();
      out << n << "_bucket{le=\""
          << (inf ? std::string("+Inf") : FormatValue(h.upper_bounds[i]))
          << "\"} " << cum << "\n";
    }
    out << n << "_sum " << FormatValue(h.sum) << "\n";
    out << n << "_count " << h.count << "\n";
  }
  for (const auto& [name, s] : series) {
    const std::string n = PromName(name);
    out << "# TYPE " << n << " summary\n";
    out << n << "{quantile=\"0.5\"} " << FormatValue(s.p50) << "\n";
    out << n << "{quantile=\"0.9\"} " << FormatValue(s.p90) << "\n";
    out << n << "{quantile=\"0.95\"} " << FormatValue(s.p95) << "\n";
    out << n << "{quantile=\"0.99\"} " << FormatValue(s.p99) << "\n";
    out << n << "_sum " << FormatValue(s.mean * static_cast<double>(s.count))
        << "\n";
    out << n << "_count " << s.count << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
        << "\": " << FormatValue(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << h.count << ", \"sum\": " << FormatValue(h.sum)
        << ", \"min\": " << FormatValue(h.min)
        << ", \"max\": " << FormatValue(h.max)
        << ", \"p50\": " << FormatValue(h.Quantile(0.5))
        << ", \"p90\": " << FormatValue(h.Quantile(0.9))
        << ", \"p99\": " << FormatValue(h.Quantile(0.99))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      if (h.counts[i] == 0) continue;  // Sparse: most log buckets are empty.
      const bool inf = h.upper_bounds[i] == std::numeric_limits<double>::infinity();
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << (inf ? std::string("\"+Inf\"") : FormatValue(h.upper_bounds[i]))
          << ", \"count\": " << h.counts[i] << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [name, s] : series) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << s.count << ", \"mean\": " << FormatValue(s.mean)
        << ", \"p50\": " << FormatValue(s.p50)
        << ", \"p95\": " << FormatValue(s.p95)
        << ", \"max\": " << FormatValue(s.max) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

FixedHistogram* MetricsRegistry::histogram(
    const std::string& name, const FixedHistogram::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<FixedHistogram>(options);
  return slot.get();
}

Series* MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>(options_.enable_series);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  for (const auto& [name, s] : series_) {
    if (s->enabled()) snap.series[name] = s->Summarize();
  }
  return snap;
}

std::string MetricsRegistry::Report() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << name << " count=" << h.count << " sum=" << FormatValue(h.sum)
        << " p50=" << FormatValue(h.Quantile(0.5))
        << " p99=" << FormatValue(h.Quantile(0.99)) << "\n";
  }
  for (const auto& [name, s] : snap.series) {
    out << name << " " << s.ToString() << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : series_) s->Reset();
}

}  // namespace streamq
