#ifndef STREAMQ_COMMON_RNG_H_
#define STREAMQ_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace streamq {

/// Deterministic, fast PRNG (xoshiro256**). Reproducible across platforms,
/// which matters for the evaluation harness: every experiment is seeded and
/// re-runs bit-identically.
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached pair).
  double NextGaussian();

  /// Bernoulli trial with probability `p` of true.
  bool NextBool(double p);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Samples a non-negative random delay; the workload generator composes
/// these to model network/queueing delay of out-of-order tuples.
class DelaySampler {
 public:
  virtual ~DelaySampler() = default;

  /// Draws one delay sample (microseconds, >= 0).
  virtual double Sample(Rng* rng) = 0;

  /// Analytic mean of the distribution, for workload tables.
  virtual double Mean() const = 0;

  /// Human-readable description, e.g. "exponential(mean=20ms)".
  virtual std::string Describe() const = 0;
};

/// Constant delay (in-order stream when used alone).
class ConstantDelay : public DelaySampler {
 public:
  explicit ConstantDelay(double value) : value_(value) {}
  double Sample(Rng*) override { return value_; }
  double Mean() const override { return value_; }
  std::string Describe() const override;

 private:
  double value_;
};

/// Uniform delay on [lo, hi).
class UniformDelay : public DelaySampler {
 public:
  UniformDelay(double lo, double hi) : lo_(lo), hi_(hi) {}
  double Sample(Rng* rng) override { return rng->NextUniform(lo_, hi_); }
  double Mean() const override { return (lo_ + hi_) / 2.0; }
  std::string Describe() const override;

 private:
  double lo_, hi_;
};

/// Exponential delay with the given mean. Classic light-tailed model.
class ExponentialDelay : public DelaySampler {
 public:
  explicit ExponentialDelay(double mean) : mean_(mean) {}
  double Sample(Rng* rng) override;
  double Mean() const override { return mean_; }
  std::string Describe() const override;

 private:
  double mean_;
};

/// Normal delay truncated at zero.
class NormalDelay : public DelaySampler {
 public:
  NormalDelay(double mean, double stddev) : mean_(mean), stddev_(stddev) {}
  double Sample(Rng* rng) override;
  double Mean() const override { return mean_; }  // Approximate (truncation).
  std::string Describe() const override;

 private:
  double mean_, stddev_;
};

/// Log-normal delay parameterized by the underlying normal's mu/sigma.
/// Heavy-ish tail; common fit for network one-way delays.
class LogNormalDelay : public DelaySampler {
 public:
  LogNormalDelay(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  double Sample(Rng* rng) override;
  double Mean() const override;
  std::string Describe() const override;

 private:
  double mu_, sigma_;
};

/// Pareto delay (scale xm, shape alpha). Heavy tail; stresses any
/// disorder-bound-tracking baseline.
class ParetoDelay : public DelaySampler {
 public:
  ParetoDelay(double xm, double alpha) : xm_(xm), alpha_(alpha) {}
  double Sample(Rng* rng) override;
  double Mean() const override;
  std::string Describe() const override;

 private:
  double xm_, alpha_;
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent `s`.
/// Used for key skew in keyed workloads (not for delays).
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s);

  /// Draws one key.
  int64_t Sample(Rng* rng) const;

  int64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  int64_t n_;
  double s_;
  std::vector<double> cdf_;  // Precomputed cumulative probabilities.
};

}  // namespace streamq

#endif  // STREAMQ_COMMON_RNG_H_
