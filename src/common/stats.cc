#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace streamq {

void RunningMoments::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningMoments::Reset() { *this = RunningMoments(); }

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  STREAMQ_CHECK_GT(alpha, 0.0);
  STREAMQ_CHECK_LE(alpha, 1.0);
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  STREAMQ_CHECK_GT(capacity, 0u);
  samples_.reserve(capacity);
}

void ReservoirSample::Add(double x) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  const int64_t j = rng_.NextInt(0, seen_ - 1);
  if (j < static_cast<int64_t>(capacity_)) {
    samples_[static_cast<size_t>(j)] = x;
  }
}

void ReservoirSample::Reset() {
  seen_ = 0;
  samples_.clear();
}

double ReservoirSample::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  return ExactQuantile(samples_, q);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  STREAMQ_CHECK_GT(q, 0.0);
  STREAMQ_CHECK_LT(q, 1.0);
  Reset();
}

void P2Quantile::Reset() {
  count_ = 0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three middle markers with parabolic interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic (P²) candidate.
      const double hp =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Linear fallback.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few samples seen so far.
    std::vector<double> v(heights_, heights_ + count_);
    return ExactQuantile(std::move(v), q_);
  }
  return heights_[2];
}

SlidingWindowQuantile::SlidingWindowQuantile(size_t capacity)
    : capacity_(capacity) {
  STREAMQ_CHECK_GT(capacity, 0u);
}

void SlidingWindowQuantile::Add(double x) {
  ++seen_;
  window_.push_back(x);
  if (window_.size() > capacity_) window_.pop_front();
}

void SlidingWindowQuantile::Reset() {
  window_.clear();
  seen_ = 0;
}

double SlidingWindowQuantile::Quantile(double q) const {
  if (window_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  scratch_.assign(window_.begin(), window_.end());
  const double pos = q * static_cast<double>(scratch_.size() - 1);
  const auto i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  auto nth = scratch_.begin() + static_cast<ptrdiff_t>(i);
  std::nth_element(scratch_.begin(), nth, scratch_.end());
  const double a = *nth;
  if (frac <= 0.0 || i + 1 >= scratch_.size()) return a;
  // nth_element leaves everything after `nth` >= a; the next order
  // statistic is the minimum of that suffix.
  const double b = *std::min_element(nth + 1, scratch_.end());
  return a * (1.0 - frac) + b * frac;
}

double SlidingWindowQuantile::CdfAt(double x) const {
  if (window_.empty()) return 1.0;
  size_t le = 0;
  for (double d : window_) {
    if (d <= x) ++le;
  }
  return static_cast<double>(le) / static_cast<double>(window_.size());
}

double SlidingWindowQuantile::Max() const {
  if (window_.empty()) return 0.0;
  return *std::max_element(window_.begin(), window_.end());
}

double SlidingWindowQuantile::Mean() const {
  if (window_.empty()) return 0.0;
  double s = 0.0;
  for (double d : window_) s += d;
  return s / static_cast<double>(window_.size());
}

std::string DistributionSummary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f "
                "p95=%.2f p99=%.2f max=%.2f",
                static_cast<long long>(count), mean, stddev, min, p50, p90,
                p95, p99, max);
  return buf;
}

DistributionSummary Summarize(const std::vector<double>& values) {
  DistributionSummary s;
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  RunningMoments m;
  for (double v : sorted) m.Add(v);
  s.count = m.count();
  s.mean = m.mean();
  s.stddev = m.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  auto at = [&sorted](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto i = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= sorted.size()) return sorted.back();
    return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
  };
  s.p50 = at(0.50);
  s.p90 = at(0.90);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= values.size()) return values.back();
  return values[i] * (1.0 - frac) + values[i + 1] * frac;
}

}  // namespace streamq
