#ifndef STREAMQ_COMMON_TABLE_WRITER_H_
#define STREAMQ_COMMON_TABLE_WRITER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace streamq {

/// Column-aligned text table used by the experiment harnesses to print the
/// rows a paper table/figure would contain. Also exports CSV so figures can
/// be re-plotted.
class TableWriter {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Starts a new row; subsequent Cell() calls fill it left to right.
  void BeginRow();
  void Cell(const std::string& v);
  void Cell(const char* v);
  void Cell(double v, int precision = 3);
  void Cell(int64_t v);
  void Cell(int v) { Cell(static_cast<int64_t>(v)); }
  void Cell(size_t v) { Cell(static_cast<int64_t>(v)); }

  /// Number of completed data rows.
  size_t row_count() const;

  /// Renders the aligned table.
  std::string ToString() const;

  /// Renders as CSV (header + rows).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamq

#endif  // STREAMQ_COMMON_TABLE_WRITER_H_
