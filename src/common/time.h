#ifndef STREAMQ_COMMON_TIME_H_
#define STREAMQ_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace streamq {

/// Event time and processing time are both expressed in microseconds since
/// an arbitrary epoch. Signed so that differences (delays, slacks) are
/// representable directly.
using TimestampUs = int64_t;

/// Durations in microseconds.
using DurationUs = int64_t;

/// Sentinel used for "no timestamp yet" (e.g. watermark before any event).
inline constexpr TimestampUs kMinTimestamp =
    std::numeric_limits<TimestampUs>::min();

/// Sentinel used for "end of stream" watermarks.
inline constexpr TimestampUs kMaxTimestamp =
    std::numeric_limits<TimestampUs>::max();

/// Convenience constructors.
inline constexpr DurationUs Micros(int64_t n) { return n; }
inline constexpr DurationUs Millis(int64_t n) { return n * 1000; }
inline constexpr DurationUs Seconds(int64_t n) { return n * 1000 * 1000; }

/// Converts a duration to fractional seconds (for reporting).
inline double ToSeconds(DurationUs d) { return static_cast<double>(d) / 1e6; }

/// Converts a duration to fractional milliseconds (for reporting).
inline double ToMillis(DurationUs d) { return static_cast<double>(d) / 1e3; }

/// Formats a timestamp/duration as a human-readable string, e.g. "1.250s",
/// "13.2ms", "640us".
std::string FormatDuration(DurationUs d);

/// Monotonic wall clock in microseconds. Used only for throughput
/// measurements; the engine itself is driven by stream progress.
TimestampUs WallClockMicros();

}  // namespace streamq

#endif  // STREAMQ_COMMON_TIME_H_
