#ifndef STREAMQ_COMMON_ARENA_H_
#define STREAMQ_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace streamq {

/// Counters for one SlabArena (all monotonically increasing except
/// `free_slabs`/`free_batches`, which are the current pool depths).
struct ArenaStats {
  int64_t slab_acquires = 0;   // Raw-slab Acquire/AcquireAtLeast calls.
  int64_t slab_reuses = 0;     // ... of which were served from the pool.
  int64_t slab_recycles = 0;   // Slabs returned and kept in the pool.
  int64_t slab_drops = 0;      // Slabs returned to a full/disabled pool.
  int64_t batch_shares = 0;    // Share() calls (one published batch each).
  int64_t batch_reuses = 0;    // ... of which reused a pooled batch node.
  size_t free_slabs = 0;
  size_t free_batches = 0;

  std::string ToString() const;
};

/// Slab/arena allocator with whole-batch recycling.
///
/// Two pools, one lock, zero steady-state allocation:
///
///  * **Raw slabs** (`Acquire`/`AcquireAtLeast` → `Recycle`): plain
///    `std::vector<T>` buffers whose heap storage survives round trips
///    through the pool. Users that own a buffer for a while (reorder-buffer
///    buckets) draw from here; returning the slab clears elements but keeps
///    capacity, so the next acquirer skips the allocation *and* the
///    reserve.
///
///  * **Shared batches** (`Share`): publishes a filled slab as an immutable
///    reference-counted batch (`Batch`). The refcount is intrusive — batch
///    node, vector storage and counter all live in one pooled allocation —
///    so handing a batch to N consumers costs N atomic increments and *no*
///    allocation, unlike `std::make_shared`, which allocates a control
///    block per batch and frees it on whichever thread drops the last
///    reference (cross-thread free traffic is exactly what the arena
///    exists to kill). When the last reference dies — on any thread — the
///    node returns to the pool of the arena that minted it.
///
/// An arena object is a cheap shared handle: copies share the same pools,
/// and the pools stay alive until the last handle *and* the last
/// outstanding batch are gone, so a `Batch` can safely outlive every
/// handle. Pools are bounded by `max_free_*`; overflow falls back to plain
/// heap free. Setting both bounds to zero disables pooling entirely and
/// degrades to one heap allocation per acquire/share — the reference
/// "malloc path" the benchmarks compare against.
///
/// Thread safety: all members are safe to call from any thread (one brief
/// mutex per pool operation — per *batch*, not per event). `Batch` copies
/// are lock-free.
template <typename T>
class SlabArena {
 public:
  struct Options {
    /// Default capacity reserved for a freshly created slab or batch node.
    /// Zero means "exactly what the caller asks for".
    size_t slab_capacity = 512;
    /// Upper bounds on pooled objects (free-list depth, not bytes).
    size_t max_free_slabs = 1024;
    size_t max_free_batches = 1024;
  };

  using Slab = std::vector<T>;

 private:
  struct Impl;

  /// One pooled batch: storage, intrusive refcount, and the owning pool
  /// (held only while the node is live, so pooled nodes do not keep the
  /// pool alive — see Impl lifetime note below).
  struct Node {
    std::vector<T> items;
    std::atomic<int32_t> refs{0};
    std::shared_ptr<Impl> home;
  };

 public:
  /// Immutable shared view of a published batch. Default-constructed /
  /// moved-from batches are empty (`!batch`) — the runners use an empty
  /// batch as their end-of-stream sentinel.
  class Batch {
   public:
    Batch() = default;
    Batch(const Batch& o) : node_(o.node_) {
      if (node_) node_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    Batch(Batch&& o) noexcept : node_(std::exchange(o.node_, nullptr)) {}
    Batch& operator=(const Batch& o) {
      Batch copy(o);
      std::swap(node_, copy.node_);
      return *this;
    }
    Batch& operator=(Batch&& o) noexcept {
      std::swap(node_, o.node_);
      return *this;
    }
    ~Batch() { reset(); }

    explicit operator bool() const { return node_ != nullptr; }
    const std::vector<T>& operator*() const { return node_->items; }
    const std::vector<T>* operator->() const { return &node_->items; }

    /// Drops this reference; the last one returns the node to its arena.
    void reset() {
      Node* node = std::exchange(node_, nullptr);
      // acq_rel: the last releaser must observe every write made before
      // the other releasers' decrements (the node is about to be reused).
      if (node != nullptr &&
          node->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Impl::ReturnNode(node);
      }
    }

   private:
    friend class SlabArena;
    explicit Batch(Node* node) : node_(node) {}
    Node* node_ = nullptr;
  };

  explicit SlabArena(Options options = {})
      : impl_(std::make_shared<Impl>(options)) {}

  const Options& options() const { return impl_->options; }

  /// Returns an empty slab with at least the default capacity reserved.
  Slab Acquire() { return AcquireAtLeast(impl_->options.slab_capacity); }

  /// Returns an empty slab with at least `min_capacity` reserved. Reuses a
  /// pooled buffer when one is available (its capacity is whatever its
  /// previous life earned it; it is grown if short).
  Slab AcquireAtLeast(size_t min_capacity) {
    Slab slab = impl_->PopSlab();
    if (slab.capacity() < min_capacity) slab.reserve(min_capacity);
    return slab;
  }

  /// Returns a slab's storage to the pool (contents are discarded, capacity
  /// is kept). Safe from any thread.
  void Recycle(Slab&& slab) { impl_->PushSlab(std::move(slab)); }

  /// Publishes the contents of `*slab` as an immutable shared batch. The
  /// storage is *swapped* into a pooled node: on return `*slab` holds the
  /// node's previous buffer — empty, capacity intact — so a feed loop that
  /// fills, shares, and refills the same scratch slab allocates nothing in
  /// the steady state. When the last `Batch` reference is dropped — from
  /// any thread — the node (storage included) returns to this arena's pool.
  Batch Share(Slab* slab) {
    Node* node = impl_->PopNode(impl_);
    std::swap(node->items, *slab);
    slab->clear();  // Pooled buffers come back cleared; fresh ones are empty.
    node->refs.store(1, std::memory_order_relaxed);
    return Batch(node);
  }

  /// Point-in-time counters (approximate across threads).
  ArenaStats stats() const { return impl_->Stats(); }

 private:
  struct Impl {
    explicit Impl(Options opts) : options(opts) {}

    ~Impl() {
      for (Node* node : free_nodes) delete node;
    }

    Slab PopSlab() {
      std::lock_guard<std::mutex> lock(mu);
      ++stats_.slab_acquires;
      if (free_slabs.empty()) {
        Slab slab;
        slab.reserve(options.slab_capacity);
        return slab;
      }
      ++stats_.slab_reuses;
      Slab slab = std::move(free_slabs.back());
      free_slabs.pop_back();
      return slab;
    }

    void PushSlab(Slab&& slab) {
      if (slab.capacity() == 0) return;  // Nothing worth keeping.
      slab.clear();
      std::lock_guard<std::mutex> lock(mu);
      if (free_slabs.size() >= options.max_free_slabs) {
        ++stats_.slab_drops;
        return;  // Pool full (or pooling disabled): plain heap free.
      }
      ++stats_.slab_recycles;
      free_slabs.push_back(std::move(slab));
    }

    /// Pops a pooled node (or heap-allocates one) and re-arms its `home`
    /// pointer so the node keeps the pool alive while in flight.
    Node* PopNode(const std::shared_ptr<Impl>& self) {
      Node* node = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stats_.batch_shares;
        if (!free_nodes.empty()) {
          ++stats_.batch_reuses;
          node = free_nodes.back();
          free_nodes.pop_back();
        }
      }
      if (node == nullptr) {
        node = new Node();
        node->items.reserve(options.slab_capacity);
      }
      node->home = self;
      return node;
    }

    /// Called by the last Batch reference, possibly long after every arena
    /// handle is gone. The node's `home` ref keeps the Impl alive until
    /// here; pooled nodes drop it (otherwise pool ↔ node references would
    /// cycle and the Impl could never die).
    static void ReturnNode(Node* node) {
      std::shared_ptr<Impl> home = std::move(node->home);
      node->items.clear();
      {
        std::lock_guard<std::mutex> lock(home->mu);
        if (home->free_nodes.size() < home->options.max_free_batches) {
          home->free_nodes.push_back(node);
          return;
        }
      }
      delete node;
    }

    ArenaStats Stats() const {
      std::lock_guard<std::mutex> lock(mu);
      ArenaStats out = stats_;
      out.free_slabs = free_slabs.size();
      out.free_batches = free_nodes.size();
      return out;
    }

    const Options options;
    mutable std::mutex mu;
    std::vector<Slab> free_slabs;
    std::vector<Node*> free_nodes;
    ArenaStats stats_;
  };

  std::shared_ptr<Impl> impl_;
};

/// Topology-aware set of SlabArena pools: one independent pool per NUMA
/// node, so a producer can mint slabs from the pool of the node it runs on.
///
/// Locality comes from two properties, neither of which needs libnuma:
///
///  * **First touch.** A freshly heap-allocated slab has no physical pages
///    until written; the kernel places each page on the node of the thread
///    that first touches it. Since the producer that acquires a slab also
///    fills it, fresh slabs land on the producer's node, and recycled slabs
///    keep the placement their first life earned.
///  * **Home-pool return.** A batch minted from node k's pool returns to
///    node k's pool when its last reference dies — wherever that thread
///    runs (SlabArena's intrusive `home` pointer). A consumer on another
///    node never captures the storage into its own pool, so slabs do not
///    drift across sockets as segments migrate between workers; the
///    cross-node return costs one mutex push on the home pool, off the
///    per-event hot path.
///
/// With one node (or the fallback topology) this is exactly one SlabArena.
template <typename T>
class NumaArenaSet {
 public:
  NumaArenaSet(typename SlabArena<T>::Options options, int node_count) {
    const int n = node_count < 1 ? 1 : node_count;
    arenas_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) arenas_.emplace_back(options);
  }

  int node_count() const { return static_cast<int>(arenas_.size()); }

  /// The pool for `node`; out-of-range nodes clamp to node 0 so callers can
  /// pass NodeOfCore results straight through.
  SlabArena<T>& ForNode(int node) {
    if (node < 0 || node >= node_count()) node = 0;
    return arenas_[static_cast<size_t>(node)];
  }

  /// Summed counters across every node's pool.
  ArenaStats TotalStats() const {
    ArenaStats total;
    for (const SlabArena<T>& arena : arenas_) {
      const ArenaStats s = arena.stats();
      total.slab_acquires += s.slab_acquires;
      total.slab_reuses += s.slab_reuses;
      total.slab_recycles += s.slab_recycles;
      total.slab_drops += s.slab_drops;
      total.batch_shares += s.batch_shares;
      total.batch_reuses += s.batch_reuses;
      total.free_slabs += s.free_slabs;
      total.free_batches += s.free_batches;
    }
    return total;
  }

 private:
  std::vector<SlabArena<T>> arenas_;
};

}  // namespace streamq

#endif  // STREAMQ_COMMON_ARENA_H_
