#ifndef STREAMQ_STREAM_GENERATOR_H_
#define STREAMQ_STREAM_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/event.h"

namespace streamq {

/// Which delay distribution to sample tuple delays from.
enum class DelayModel {
  kConstant,     // a = value
  kUniform,      // [a, b)
  kExponential,  // mean = a
  kNormal,       // mean = a, stddev = b (truncated at 0)
  kLogNormal,    // mu = a, sigma = b
  kPareto,       // xm = a, alpha = b
};

/// Parameterized delay distribution (interpretation of a/b per DelayModel).
struct DelayModelSpec {
  DelayModel model = DelayModel::kExponential;
  double a = 20000.0;  // 20ms mean by default.
  double b = 0.0;

  /// Instantiates the matching sampler.
  std::unique_ptr<DelaySampler> MakeSampler() const;

  std::string Describe() const;
};

/// How the delay scale evolves over event time. The sampled base delay is
/// multiplied by ScaleAt(event_time). Non-stationarity is what separates the
/// adaptive operators from fixed-K; every adaptation experiment uses one of
/// these regimes.
enum class DynamicsKind {
  kStationary,  // scale == 1 always
  kStep,        // 1 before t0, `factor` from t0 on
  kRamp,        // 1 before t0, linear to `factor` at t1, `factor` after
  kSine,        // 1 + amplitude * sin(2*pi*(t/period)), floored at 0.05
  kBurst,       // `factor` during [t0 + k*period, t0 + k*period + duration)
};

/// Time-varying delay scale.
struct DelayDynamics {
  DynamicsKind kind = DynamicsKind::kStationary;
  double factor = 1.0;
  double amplitude = 0.0;
  TimestampUs t0 = 0;
  TimestampUs t1 = 0;
  DurationUs period = 0;
  DurationUs duration = 0;

  /// Multiplicative delay scale at event time `t`.
  double ScaleAt(TimestampUs t) const;

  std::string Describe() const;
};

/// What values the tuples carry (evaluated in event-time order).
enum class ValueModel {
  kConstant,    // a
  kUniform,     // [a, b)
  kGaussian,    // mean a, stddev b
  kRandomWalk,  // start a, step stddev b
  kSine,        // a * sin(2*pi*t/period_us = b) + gaussian noise c
};

/// Parameterized value process.
struct ValueModelSpec {
  ValueModel model = ValueModel::kUniform;
  double a = 0.0;
  double b = 1.0;
  double c = 0.0;
};

/// Full synthetic workload description. Defaults give a 100k-tuple, 10k
/// events/s stream with exponential 20ms delays — moderately disordered.
struct WorkloadConfig {
  /// Number of tuples to generate.
  int64_t num_events = 100000;

  /// Mean event-time rate (events per second of event time).
  double events_per_second = 10000.0;

  /// If true, inter-event gaps are exponential (Poisson process); otherwise
  /// events are equally spaced.
  bool poisson_arrivals = true;

  /// Number of distinct keys; keys drawn Zipf(`key_zipf_s`) if s > 0, else
  /// uniformly.
  int64_t num_keys = 1;
  double key_zipf_s = 0.0;

  /// Per-key delay heterogeneity: key k's delays are additionally scaled by
  /// `key_delay_spread^(k / (num_keys-1))`, so the last key's delays are
  /// `key_delay_spread`x the first key's. 1.0 (default) = homogeneous.
  /// Models sources behind different gateways/paths — the regime where
  /// per-key disorder handling beats one global buffer.
  double key_delay_spread = 1.0;

  /// Delay distribution and its dynamics.
  DelayModelSpec delay;
  DelayDynamics dynamics;

  /// If in [0, 1], only this fraction of tuples receive a sampled delay; the
  /// rest arrive with zero delay. < 0 means "all tuples sampled" (default).
  double delayed_fraction = -1.0;

  /// Value process.
  ValueModelSpec value;

  /// PRNG seed; equal seeds give bit-identical workloads.
  uint64_t seed = 42;

  /// Validates parameter ranges.
  Status Validate() const;
};

/// A generated workload: the arrival-ordered stream (the engine's input).
/// Event ids are assigned in event-time order, so sorting by id recovers the
/// in-order stream for oracle evaluation.
struct GeneratedWorkload {
  WorkloadConfig config;
  std::vector<Event> arrival_order;

  /// The same events sorted by event time (oracle input). Computed lazily by
  /// InOrder().
  std::vector<Event> InOrder() const;
};

/// Generates a workload. Aborts on invalid config (call Validate() first for
/// recoverable handling).
GeneratedWorkload GenerateWorkload(const WorkloadConfig& config);

}  // namespace streamq

#endif  // STREAMQ_STREAM_GENERATOR_H_
