#ifndef STREAMQ_STREAM_SOURCE_H_
#define STREAMQ_STREAM_SOURCE_H_

#include <cstddef>
#include <vector>

#include "stream/event.h"

namespace streamq {

/// Pull-based event source. Events are delivered in *arrival order* —
/// i.e., possibly out of event-time order; that is the whole point.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Fills `*out` with the next event and returns true, or returns false at
  /// end of stream.
  virtual bool Next(Event* out) = 0;

  /// Restarts the stream from the beginning, if supported. Sources backed by
  /// materialized data support this; one-shot sources may not.
  virtual void Reset() = 0;

  /// Total number of events, if known in advance; -1 otherwise.
  virtual int64_t size_hint() const { return -1; }
};

/// Source over a pre-materialized, arrival-ordered vector of events.
class VectorSource : public EventSource {
 public:
  explicit VectorSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool Next(Event* out) override {
    if (pos_ >= events_.size()) return false;
    *out = events_[pos_++];
    return true;
  }

  void Reset() override { pos_ = 0; }

  int64_t size_hint() const override {
    return static_cast<int64_t>(events_.size());
  }

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
  size_t pos_ = 0;
};

/// Drains a source into a vector (testing/harness convenience).
std::vector<Event> DrainSource(EventSource* source);

}  // namespace streamq

#endif  // STREAMQ_STREAM_SOURCE_H_
