#ifndef STREAMQ_STREAM_SOURCE_H_
#define STREAMQ_STREAM_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "stream/event.h"

namespace streamq {

/// Pull-based event source. Events are delivered in *arrival order* —
/// i.e., possibly out of event-time order; that is the whole point.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Fills `*out` with the next event and returns true, or returns false at
  /// end of stream.
  virtual bool Next(Event* out) = 0;

  /// Appends up to `max_events` next events to `*out`; returns the number
  /// appended (0 at end of stream). Same stream, chunked — the batched
  /// executor path pulls through this to amortize per-event dispatch.
  /// Default loops Next(); materialized sources override with a bulk copy.
  virtual size_t NextBatch(std::vector<Event>* out, size_t max_events) {
    size_t appended = 0;
    Event e;
    while (appended < max_events && Next(&e)) {
      out->push_back(e);
      ++appended;
    }
    return appended;
  }

  /// Restarts the stream from the beginning, if supported. Sources backed by
  /// materialized data support this; one-shot sources may not.
  virtual void Reset() = 0;

  /// Total number of events, if known in advance; -1 otherwise.
  virtual int64_t size_hint() const { return -1; }
};

/// Source over a pre-materialized, arrival-ordered vector of events.
class VectorSource : public EventSource {
 public:
  explicit VectorSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool Next(Event* out) override {
    if (pos_ >= events_.size()) return false;
    *out = events_[pos_++];
    return true;
  }

  size_t NextBatch(std::vector<Event>* out, size_t max_events) override {
    const size_t n = std::min(max_events, events_.size() - pos_);
    out->insert(out->end(), events_.begin() + static_cast<ptrdiff_t>(pos_),
                events_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return n;
  }

  void Reset() override { pos_ = 0; }

  int64_t size_hint() const override {
    return static_cast<int64_t>(events_.size());
  }

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
  size_t pos_ = 0;
};

/// Drains a source into a vector (testing/harness convenience).
std::vector<Event> DrainSource(EventSource* source);

}  // namespace streamq

#endif  // STREAMQ_STREAM_SOURCE_H_
