#include "stream/source.h"

namespace streamq {

std::vector<Event> DrainSource(EventSource* source) {
  std::vector<Event> out;
  if (source->size_hint() > 0) {
    out.reserve(static_cast<size_t>(source->size_hint()));
  }
  Event e;
  while (source->Next(&e)) out.push_back(e);
  return out;
}

}  // namespace streamq
