#ifndef STREAMQ_STREAM_FAULT_INJECTOR_H_
#define STREAMQ_STREAM_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "stream/source.h"

namespace streamq {

/// Configuration for FaultInjectingSource: per-tuple probabilities for each
/// fault class, all independent and all off by default. With every
/// probability at zero the injector is a transparent pass-through.
///
/// All randomness flows from `seed` through one deterministic Rng, so a
/// given (inner stream, spec) pair always produces the identical faulty
/// stream — chaos runs are replayable bit-for-bit.
struct FaultSpec {
  uint64_t seed = 42;

  /// Tuple vanishes (sensor outage, UDP loss).
  double drop_prob = 0.0;

  /// Tuple is delivered twice, back to back, same id (at-least-once
  /// upstream retrying).
  double duplicate_prob = 0.0;

  /// Tuple's timestamps are corrupted; the sub-mode is picked uniformly:
  /// negative event time, event time near the int64 ceiling (overflow
  /// bait for window arithmetic), or a clock regression where
  /// arrival_time < event_time. Every variant is rejected by
  /// ValidateEvent, so pipelines running with IngestValidation::kOff feel
  /// the full blast and validated ones count-and-drop it.
  double timestamp_corrupt_prob = 0.0;

  /// Tuple's value becomes NaN or +/-Inf (sensor glitch).
  double value_corrupt_prob = 0.0;

  /// The source sleeps `stall_us` of wall time before delivering (upstream
  /// hiccup; exercises queue backoff and feed timeouts).
  double stall_prob = 0.0;
  DurationUs stall_us = Millis(1);

  /// Starts a burst: the next `burst_len` tuples all arrive at the same
  /// instant (the burst start), each with its event time pushed back by a
  /// uniform amount up to `burst_spread_us` — a buffered upstream flushing
  /// at once, i.e. a sudden disorder spike.
  double burst_prob = 0.0;
  int64_t burst_len = 32;
  DurationUs burst_spread_us = Millis(100);

  Status Validate() const;
};

/// Per-fault-class accounting. events_out = events_in - dropped +
/// duplicated; the remaining counters classify (non-exclusively) what was
/// mutated on the way through.
struct FaultInjectionStats {
  int64_t events_in = 0;
  int64_t events_out = 0;
  int64_t dropped = 0;
  int64_t duplicated = 0;
  int64_t timestamp_corrupted = 0;
  int64_t value_corrupted = 0;
  int64_t stalls = 0;
  int64_t bursts = 0;

  std::string ToString() const;
};

/// EventSource decorator that injects deterministic, seeded faults into an
/// inner stream: drops, duplicates, timestamp corruption, value corruption,
/// wall-clock stalls, and disorder bursts (see FaultSpec). The chaos
/// harness wraps any workload with this and asserts the pipeline degrades
/// instead of crashing — bounded memory, monotone watermarks, exact
/// accounting.
///
/// The injector does not own the inner source; Reset() resets both the
/// inner stream and the fault Rng, replaying the identical faulty stream.
class FaultInjectingSource : public EventSource {
 public:
  /// `spec` must Validate(); aborts otherwise (harness misconfiguration).
  FaultInjectingSource(EventSource* inner, const FaultSpec& spec);

  bool Next(Event* out) override;
  void Reset() override;

  /// Unknown: drops and duplicates change the count unpredictably.
  int64_t size_hint() const override { return -1; }

  const FaultInjectionStats& stats() const { return stats_; }
  const FaultSpec& spec() const { return spec_; }

 private:
  void CorruptTimestamps(Event* e);
  void CorruptValue(Event* e);

  EventSource* inner_;
  FaultSpec spec_;
  Rng rng_;
  FaultInjectionStats stats_;
  /// Duplicate waiting to be delivered on the next pull.
  std::optional<Event> pending_dup_;
  /// Remaining tuples in the current burst and its pinned arrival instant.
  int64_t burst_remaining_ = 0;
  TimestampUs burst_start_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_STREAM_FAULT_INJECTOR_H_
