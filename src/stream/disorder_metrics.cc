#include "stream/disorder_metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/stats.h"

namespace streamq {

std::vector<DurationUs> ComputeLateness(
    const std::vector<Event>& arrival_order) {
  std::vector<DurationUs> lateness;
  lateness.reserve(arrival_order.size());
  TimestampUs frontier = kMinTimestamp;
  for (const Event& e : arrival_order) {
    if (frontier == kMinTimestamp || e.event_time >= frontier) {
      lateness.push_back(0);
    } else {
      lateness.push_back(frontier - e.event_time);
    }
    frontier = std::max(frontier, e.event_time);
  }
  return lateness;
}

DisorderStats ComputeDisorderStats(const std::vector<Event>& arrival_order) {
  DisorderStats s;
  s.count = static_cast<int64_t>(arrival_order.size());
  if (arrival_order.empty()) return s;

  const std::vector<DurationUs> lateness = ComputeLateness(arrival_order);
  std::vector<double> as_double;
  as_double.reserve(lateness.size());
  int64_t late = 0;
  for (DurationUs d : lateness) {
    as_double.push_back(static_cast<double>(d));
    if (d > 0) ++late;
  }
  const DistributionSummary sum = Summarize(as_double);
  s.out_of_order_fraction =
      static_cast<double>(late) / static_cast<double>(s.count);
  s.mean_lateness_us = sum.mean;
  s.p50_lateness_us = static_cast<DurationUs>(sum.p50);
  s.p95_lateness_us = static_cast<DurationUs>(sum.p95);
  s.p99_lateness_us = static_cast<DurationUs>(sum.p99);
  s.max_lateness_us = static_cast<DurationUs>(sum.max);

  // Max displacement: rank in arrival order minus rank in event-time order.
  // Compute event-time ranks by sorting indices.
  std::vector<int64_t> idx(arrival_order.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int64_t>(i);
  std::sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    const Event& ea = arrival_order[static_cast<size_t>(a)];
    const Event& eb = arrival_order[static_cast<size_t>(b)];
    if (ea.event_time != eb.event_time) return ea.event_time < eb.event_time;
    return ea.id < eb.id;
  });
  // idx[r] = arrival position of the tuple with event-time rank r.
  for (size_t r = 0; r < idx.size(); ++r) {
    const int64_t displacement = idx[r] - static_cast<int64_t>(r);
    s.max_displacement = std::max(s.max_displacement, displacement);
  }
  return s;
}

std::string DisorderStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "DisorderStats{n=%lld ooo=%.1f%% mean=%s p95=%s p99=%s max=%s "
      "max_disp=%lld}",
      static_cast<long long>(count), out_of_order_fraction * 100.0,
      FormatDuration(static_cast<DurationUs>(mean_lateness_us)).c_str(),
      FormatDuration(p95_lateness_us).c_str(),
      FormatDuration(p99_lateness_us).c_str(),
      FormatDuration(max_lateness_us).c_str(),
      static_cast<long long>(max_displacement));
  return buf;
}

}  // namespace streamq
