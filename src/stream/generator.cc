#include "stream/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace streamq {

std::unique_ptr<DelaySampler> DelayModelSpec::MakeSampler() const {
  switch (model) {
    case DelayModel::kConstant:
      return std::make_unique<ConstantDelay>(a);
    case DelayModel::kUniform:
      return std::make_unique<UniformDelay>(a, b);
    case DelayModel::kExponential:
      return std::make_unique<ExponentialDelay>(a);
    case DelayModel::kNormal:
      return std::make_unique<NormalDelay>(a, b);
    case DelayModel::kLogNormal:
      return std::make_unique<LogNormalDelay>(a, b);
    case DelayModel::kPareto:
      return std::make_unique<ParetoDelay>(a, b);
  }
  STREAMQ_LOG(Fatal) << "unknown delay model";
  return nullptr;
}

std::string DelayModelSpec::Describe() const {
  return MakeSampler()->Describe();
}

double DelayDynamics::ScaleAt(TimestampUs t) const {
  switch (kind) {
    case DynamicsKind::kStationary:
      return 1.0;
    case DynamicsKind::kStep:
      return t < t0 ? 1.0 : factor;
    case DynamicsKind::kRamp: {
      if (t <= t0) return 1.0;
      if (t >= t1) return factor;
      const double frac = static_cast<double>(t - t0) /
                          static_cast<double>(t1 - t0);
      return 1.0 + (factor - 1.0) * frac;
    }
    case DynamicsKind::kSine: {
      STREAMQ_CHECK_GT(period, 0);
      const double phase = 2.0 * M_PI * static_cast<double>(t) /
                           static_cast<double>(period);
      return std::max(0.05, 1.0 + amplitude * std::sin(phase));
    }
    case DynamicsKind::kBurst: {
      if (t < t0) return 1.0;
      const auto since = t - t0;
      const auto offset = period > 0 ? since % period : since;
      return offset < duration ? factor : 1.0;
    }
  }
  STREAMQ_LOG(Fatal) << "unknown dynamics kind";
  return 1.0;
}

std::string DelayDynamics::Describe() const {
  char buf[160];
  switch (kind) {
    case DynamicsKind::kStationary:
      return "stationary";
    case DynamicsKind::kStep:
      std::snprintf(buf, sizeof(buf), "step(x%.1f at %s)", factor,
                    FormatDuration(t0).c_str());
      return buf;
    case DynamicsKind::kRamp:
      std::snprintf(buf, sizeof(buf), "ramp(to x%.1f over [%s, %s])", factor,
                    FormatDuration(t0).c_str(), FormatDuration(t1).c_str());
      return buf;
    case DynamicsKind::kSine:
      std::snprintf(buf, sizeof(buf), "sine(amp=%.2f period=%s)", amplitude,
                    FormatDuration(period).c_str());
      return buf;
    case DynamicsKind::kBurst:
      std::snprintf(buf, sizeof(buf), "burst(x%.1f for %s every %s)", factor,
                    FormatDuration(duration).c_str(),
                    FormatDuration(period).c_str());
      return buf;
  }
  return "?";
}

Status WorkloadConfig::Validate() const {
  if (num_events <= 0) {
    return Status::InvalidArgument("num_events must be positive");
  }
  if (events_per_second <= 0.0) {
    return Status::InvalidArgument("events_per_second must be positive");
  }
  if (num_keys <= 0) {
    return Status::InvalidArgument("num_keys must be positive");
  }
  if (delayed_fraction > 1.0) {
    return Status::InvalidArgument("delayed_fraction must be <= 1");
  }
  if (key_delay_spread <= 0.0) {
    return Status::InvalidArgument("key_delay_spread must be positive");
  }
  if (dynamics.kind == DynamicsKind::kSine && dynamics.period <= 0) {
    return Status::InvalidArgument("sine dynamics require period > 0");
  }
  if (dynamics.kind == DynamicsKind::kRamp && dynamics.t1 <= dynamics.t0) {
    return Status::InvalidArgument("ramp dynamics require t1 > t0");
  }
  if (dynamics.kind == DynamicsKind::kBurst && dynamics.duration <= 0) {
    return Status::InvalidArgument("burst dynamics require duration > 0");
  }
  return Status::OK();
}

namespace {

/// Stateful value process evaluated in event-time order.
class ValueProcess {
 public:
  ValueProcess(const ValueModelSpec& spec, Rng* rng)
      : spec_(spec), rng_(rng), walk_(spec.a) {}

  double Next(TimestampUs t) {
    switch (spec_.model) {
      case ValueModel::kConstant:
        return spec_.a;
      case ValueModel::kUniform:
        return rng_->NextUniform(spec_.a, spec_.b);
      case ValueModel::kGaussian:
        return spec_.a + spec_.b * rng_->NextGaussian();
      case ValueModel::kRandomWalk:
        walk_ += spec_.b * rng_->NextGaussian();
        return walk_;
      case ValueModel::kSine: {
        const double period = spec_.b > 0 ? spec_.b : 1e6;
        const double base =
            spec_.a * std::sin(2.0 * M_PI * static_cast<double>(t) / period);
        return base + spec_.c * rng_->NextGaussian();
      }
    }
    STREAMQ_LOG(Fatal) << "unknown value model";
    return 0.0;
  }

 private:
  ValueModelSpec spec_;
  Rng* rng_;
  double walk_;
};

}  // namespace

GeneratedWorkload GenerateWorkload(const WorkloadConfig& config) {
  STREAMQ_CHECK_OK(config.Validate());

  Rng rng(config.seed);
  auto delay_sampler = config.delay.MakeSampler();
  ValueProcess values(config.value, &rng);

  std::unique_ptr<ZipfSampler> zipf;
  if (config.num_keys > 1 && config.key_zipf_s > 0.0) {
    zipf = std::make_unique<ZipfSampler>(config.num_keys, config.key_zipf_s);
  }

  const double mean_gap_us = 1e6 / config.events_per_second;

  GeneratedWorkload out;
  out.config = config;
  out.arrival_order.reserve(static_cast<size_t>(config.num_events));

  double event_clock = 0.0;
  for (int64_t i = 0; i < config.num_events; ++i) {
    if (config.poisson_arrivals) {
      double u = rng.NextDouble();
      while (u <= 1e-300) u = rng.NextDouble();
      event_clock += -mean_gap_us * std::log(u);
    } else {
      event_clock += mean_gap_us;
    }

    Event e;
    e.id = i;
    e.event_time = static_cast<TimestampUs>(event_clock);
    if (config.num_keys == 1) {
      e.key = 0;
    } else if (zipf) {
      e.key = zipf->Sample(&rng);
    } else {
      e.key = rng.NextInt(0, config.num_keys - 1);
    }
    e.value = values.Next(e.event_time);

    double delay = 0.0;
    const bool delayed =
        config.delayed_fraction < 0.0 || rng.NextBool(config.delayed_fraction);
    if (delayed) {
      delay = delay_sampler->Sample(&rng) *
              config.dynamics.ScaleAt(e.event_time);
      if (config.key_delay_spread != 1.0 && config.num_keys > 1) {
        const double frac = static_cast<double>(e.key) /
                            static_cast<double>(config.num_keys - 1);
        delay *= std::pow(config.key_delay_spread, frac);
      }
      if (delay < 0.0) delay = 0.0;
    }
    e.arrival_time = e.event_time + static_cast<DurationUs>(delay);
    out.arrival_order.push_back(e);
  }

  std::stable_sort(out.arrival_order.begin(), out.arrival_order.end(),
                   ArrivalTimeLess());
  return out;
}

std::vector<Event> GeneratedWorkload::InOrder() const {
  std::vector<Event> sorted = arrival_order;
  std::sort(sorted.begin(), sorted.end(), EventTimeLess());
  return sorted;
}

}  // namespace streamq
