#ifndef STREAMQ_STREAM_DISORDER_METRICS_H_
#define STREAMQ_STREAM_DISORDER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "stream/event.h"

namespace streamq {

/// Characterization of how disordered an arrival-ordered stream is.
/// The lateness of a tuple is `max(0, max_event_time_seen_before - ts)`:
/// how far behind the stream's event-time frontier the tuple arrives. A
/// disorder handler with slack `K` delivers exactly the tuples with
/// lateness <= K in order.
struct DisorderStats {
  int64_t count = 0;

  /// Fraction of tuples with positive lateness.
  double out_of_order_fraction = 0.0;

  /// Lateness distribution (over all tuples; in-order tuples contribute 0).
  double mean_lateness_us = 0.0;
  DurationUs p50_lateness_us = 0;
  DurationUs p95_lateness_us = 0;
  DurationUs p99_lateness_us = 0;
  DurationUs max_lateness_us = 0;

  /// Largest number of positions a tuple would have to move left to restore
  /// event-time order (a buffer-size-in-tuples view of disorder).
  int64_t max_displacement = 0;

  std::string ToString() const;
};

/// Computes disorder statistics over an arrival-ordered stream.
DisorderStats ComputeDisorderStats(const std::vector<Event>& arrival_order);

/// Returns, for each tuple in arrival order, its lateness w.r.t. the
/// event-time frontier (>= 0). Useful for plotting delay traces.
std::vector<DurationUs> ComputeLateness(const std::vector<Event>& arrival_order);

}  // namespace streamq

#endif  // STREAMQ_STREAM_DISORDER_METRICS_H_
