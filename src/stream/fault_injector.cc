#include "stream/fault_injector.h"

#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>

#include "common/logging.h"

namespace streamq {

namespace {

Status ValidateProb(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string("fault spec: ") + name +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Status FaultSpec::Validate() const {
  STREAMQ_RETURN_NOT_OK(ValidateProb(drop_prob, "drop_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(duplicate_prob, "duplicate_prob"));
  STREAMQ_RETURN_NOT_OK(
      ValidateProb(timestamp_corrupt_prob, "timestamp_corrupt_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(value_corrupt_prob, "value_corrupt_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(stall_prob, "stall_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(burst_prob, "burst_prob"));
  if (stall_us < 0) {
    return Status::InvalidArgument("fault spec: stall_us must be >= 0");
  }
  if (burst_len <= 0) {
    return Status::InvalidArgument("fault spec: burst_len must be > 0");
  }
  if (burst_spread_us < 0) {
    return Status::InvalidArgument("fault spec: burst_spread_us must be >= 0");
  }
  return Status::OK();
}

std::string FaultInjectionStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "FaultInjection{in=%lld out=%lld dropped=%lld dup=%lld "
                "ts_corrupt=%lld val_corrupt=%lld stalls=%lld bursts=%lld}",
                static_cast<long long>(events_in),
                static_cast<long long>(events_out),
                static_cast<long long>(dropped),
                static_cast<long long>(duplicated),
                static_cast<long long>(timestamp_corrupted),
                static_cast<long long>(value_corrupted),
                static_cast<long long>(stalls),
                static_cast<long long>(bursts));
  return buf;
}

FaultInjectingSource::FaultInjectingSource(EventSource* inner,
                                           const FaultSpec& spec)
    : inner_(inner), spec_(spec), rng_(spec.seed) {
  STREAMQ_CHECK(inner != nullptr);
  STREAMQ_CHECK_OK(spec.Validate());
}

void FaultInjectingSource::CorruptTimestamps(Event* e) {
  ++stats_.timestamp_corrupted;
  switch (rng_.NextInt(0, 2)) {
    case 0:  // Negative event time.
      e->event_time = -(e->event_time + 1);
      break;
    case 1:  // Near the int64 ceiling: bait for window-end arithmetic.
      e->event_time = kMaxTimestamp - rng_.NextInt(0, Millis(1));
      break;
    default:  // Clock regression: the tuple claims to be from the future.
      e->event_time = e->arrival_time + rng_.NextInt(1, Seconds(1));
      break;
  }
}

void FaultInjectingSource::CorruptValue(Event* e) {
  ++stats_.value_corrupted;
  switch (rng_.NextInt(0, 2)) {
    case 0:
      e->value = std::numeric_limits<double>::quiet_NaN();
      break;
    case 1:
      e->value = std::numeric_limits<double>::infinity();
      break;
    default:
      e->value = -std::numeric_limits<double>::infinity();
      break;
  }
}

bool FaultInjectingSource::Next(Event* out) {
  if (pending_dup_.has_value()) {
    *out = *pending_dup_;
    pending_dup_.reset();
    ++stats_.events_out;
    return true;
  }
  Event e;
  while (inner_->Next(&e)) {
    ++stats_.events_in;
    if (spec_.drop_prob > 0.0 && rng_.NextBool(spec_.drop_prob)) {
      ++stats_.dropped;
      continue;
    }
    if (burst_remaining_ == 0 && spec_.burst_prob > 0.0 &&
        rng_.NextBool(spec_.burst_prob)) {
      ++stats_.bursts;
      burst_remaining_ = spec_.burst_len;
      burst_start_ = e.arrival_time;
    }
    if (burst_remaining_ > 0) {
      --burst_remaining_;
      // The whole burst lands at one instant (arrival stays monotone: the
      // pinned instant is the burst head's arrival) with event times pushed
      // back, i.e. a sudden spike of lateness.
      e.arrival_time = burst_start_;
      if (spec_.burst_spread_us > 0) {
        e.event_time -= rng_.NextInt(0, spec_.burst_spread_us);
        if (e.event_time < 0) e.event_time = 0;
      }
    }
    if (spec_.timestamp_corrupt_prob > 0.0 &&
        rng_.NextBool(spec_.timestamp_corrupt_prob)) {
      CorruptTimestamps(&e);
    }
    if (spec_.value_corrupt_prob > 0.0 &&
        rng_.NextBool(spec_.value_corrupt_prob)) {
      CorruptValue(&e);
    }
    if (spec_.stall_prob > 0.0 && rng_.NextBool(spec_.stall_prob)) {
      ++stats_.stalls;
      if (spec_.stall_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(spec_.stall_us));
      }
    }
    if (spec_.duplicate_prob > 0.0 && rng_.NextBool(spec_.duplicate_prob)) {
      ++stats_.duplicated;
      pending_dup_ = e;  // Same id: a true at-least-once duplicate.
    }
    *out = e;
    ++stats_.events_out;
    return true;
  }
  return false;
}

void FaultInjectingSource::Reset() {
  inner_->Reset();
  rng_ = Rng(spec_.seed);
  stats_ = FaultInjectionStats{};
  pending_dup_.reset();
  burst_remaining_ = 0;
  burst_start_ = 0;
}

}  // namespace streamq
