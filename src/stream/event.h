#ifndef STREAMQ_STREAM_EVENT_H_
#define STREAMQ_STREAM_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace streamq {

template <typename T>
class SlabArena;

struct Event;

/// Slab arena specialized for Event storage (see common/arena.h): pooled
/// `std::vector<Event>` slabs for reorder-buffer buckets plus recycled
/// shared batches for the runner queues.
using EventArena = SlabArena<Event>;

/// Process-wide event arena, shared by every handler/runner configured with
/// arena allocation but no explicit arena of its own. Never destroyed
/// (function-local static pointer), so it safely outlives any handler,
/// including ones torn down during static destruction.
EventArena& GlobalEventArena();

/// One stream tuple. The engine is deliberately schema-fixed: a keyed,
/// timestamped double. This matches the operator under study (disorder
/// handling + windowed aggregation), whose behavior depends only on
/// timestamps and one aggregated value; a generic row abstraction would add
/// nothing to the reproduction while slowing everything down.
struct Event {
  /// Generation-order id (== position in event-time order for generated
  /// workloads). Stable across reordering; used by oracle audits.
  int64_t id = 0;

  /// Key for keyed windows (e.g., sensor id, stock symbol).
  int64_t key = 0;

  /// Event (occurrence) timestamp, microseconds.
  TimestampUs event_time = 0;

  /// Arrival (ingestion) timestamp, microseconds. arrival_time >= event_time
  /// for physical delays; the generator guarantees it.
  TimestampUs arrival_time = 0;

  /// Measured value carried by the tuple.
  double value = 0.0;

  /// Observed delay of this tuple.
  DurationUs delay() const { return arrival_time - event_time; }

  bool operator==(const Event& other) const = default;
};

/// Orders by event time, breaking ties by id so ordering is total and
/// deterministic.
struct EventTimeLess {
  bool operator()(const Event& a, const Event& b) const {
    if (a.event_time != b.event_time) return a.event_time < b.event_time;
    return a.id < b.id;
  }
};

/// Orders by arrival time (ties by id).
struct ArrivalTimeLess {
  bool operator()(const Event& a, const Event& b) const {
    if (a.arrival_time != b.arrival_time) return a.arrival_time < b.arrival_time;
    return a.id < b.id;
  }
};

/// Renders an event for debugging, e.g.
/// "Event{id=3 key=1 ts=1000 at=1500 v=2.5}".
std::string ToString(const Event& e);

/// Largest timestamp a well-formed tuple may carry. Half the int64 range:
/// leaves headroom so window arithmetic (end = start + size, watermark +
/// slack) cannot overflow even for the last valid tuple.
inline constexpr TimestampUs kMaxValidTimestamp = kMaxTimestamp / 2;

/// Structural sanity check for one arrival, used by ingest validation
/// (ContinuousQuery::IngestValidation). Rejects tuples no handler can
/// process meaningfully:
///  * non-finite value (NaN/Inf) — poisons any aggregate it touches,
///  * negative event or arrival time,
///  * timestamps beyond kMaxValidTimestamp (window-arithmetic overflow),
///  * arrival_time < event_time (clock regression; delay() would be
///    negative and lateness estimators would corrupt).
Status ValidateEvent(const Event& e);

/// Checks whether `events` is sorted by event time (the property every
/// disorder handler must establish on its output).
bool IsEventTimeOrdered(const std::vector<Event>& events);

/// Checks whether `events` is sorted by arrival time (the property every
/// generated workload must have on its input side).
bool IsArrivalTimeOrdered(const std::vector<Event>& events);

}  // namespace streamq

#endif  // STREAMQ_STREAM_EVENT_H_
