#include "stream/event.h"

#include <cstdio>

namespace streamq {

std::string ToString(const Event& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Event{id=%lld key=%lld ts=%lld at=%lld v=%g}",
                static_cast<long long>(e.id), static_cast<long long>(e.key),
                static_cast<long long>(e.event_time),
                static_cast<long long>(e.arrival_time), e.value);
  return buf;
}

bool IsEventTimeOrdered(const std::vector<Event>& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].event_time < events[i - 1].event_time) return false;
  }
  return true;
}

bool IsArrivalTimeOrdered(const std::vector<Event>& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].arrival_time < events[i - 1].arrival_time) return false;
  }
  return true;
}

}  // namespace streamq
