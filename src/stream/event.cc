#include "stream/event.h"

#include <cmath>
#include <cstdio>

#include "common/arena.h"

namespace streamq {

EventArena& GlobalEventArena() {
  // slab_capacity 0: bucket users ask for exact capacities via
  // AcquireAtLeast, so a default reservation would only waste memory.
  // Intentionally leaked — reachable through the static, so LeakSanitizer
  // stays quiet and no static-destruction-order hazard exists.
  static EventArena* arena = new EventArena(
      EventArena::Options{.slab_capacity = 0,
                          .max_free_slabs = 4096,
                          .max_free_batches = 1024});
  return *arena;
}

std::string ToString(const Event& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Event{id=%lld key=%lld ts=%lld at=%lld v=%g}",
                static_cast<long long>(e.id), static_cast<long long>(e.key),
                static_cast<long long>(e.event_time),
                static_cast<long long>(e.arrival_time), e.value);
  return buf;
}

Status ValidateEvent(const Event& e) {
  if (!std::isfinite(e.value)) {
    return Status::InvalidArgument("event value is not finite: " +
                                   ToString(e));
  }
  if (e.event_time < 0 || e.arrival_time < 0) {
    return Status::InvalidArgument("negative timestamp: " + ToString(e));
  }
  if (e.event_time > kMaxValidTimestamp ||
      e.arrival_time > kMaxValidTimestamp) {
    return Status::InvalidArgument("timestamp overflows valid range: " +
                                   ToString(e));
  }
  if (e.arrival_time < e.event_time) {
    return Status::InvalidArgument("arrival precedes event time: " +
                                   ToString(e));
  }
  return Status::OK();
}

bool IsEventTimeOrdered(const std::vector<Event>& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].event_time < events[i - 1].event_time) return false;
  }
  return true;
}

bool IsArrivalTimeOrdered(const std::vector<Event>& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].arrival_time < events[i - 1].arrival_time) return false;
  }
  return true;
}

}  // namespace streamq
