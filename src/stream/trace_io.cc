#include "stream/trace_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/csv.h"

namespace streamq {

namespace {

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Status SaveTrace(const std::string& path, const std::vector<Event>& events) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(events.size() + 1);
  rows.push_back({"id", "key", "event_time", "arrival_time", "value"});
  char buf[64];
  for (const Event& e : events) {
    std::vector<std::string> row;
    row.reserve(5);
    row.push_back(std::to_string(e.id));
    row.push_back(std::to_string(e.key));
    row.push_back(std::to_string(e.event_time));
    row.push_back(std::to_string(e.arrival_time));
    std::snprintf(buf, sizeof(buf), "%.17g", e.value);
    row.push_back(buf);
    rows.push_back(std::move(row));
  }
  return csv::WriteFile(path, rows);
}

Result<std::vector<Event>> LoadTrace(const std::string& path) {
  STREAMQ_ASSIGN_OR_RETURN(auto rows, csv::ReadFile(path, /*skip_header=*/true));
  std::vector<Event> events;
  events.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 5) {
      return Status::IOError("trace row " + std::to_string(i + 2) + " has " +
                             std::to_string(row.size()) +
                             " fields, expected 5: " + path);
    }
    Event e;
    if (!ParseInt64(row[0], &e.id) || !ParseInt64(row[1], &e.key) ||
        !ParseInt64(row[2], &e.event_time) ||
        !ParseInt64(row[3], &e.arrival_time) ||
        !ParseDouble(row[4], &e.value)) {
      return Status::IOError("trace row " + std::to_string(i + 2) +
                             " failed to parse: " + path);
    }
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(), ArrivalTimeLess());
  return events;
}

}  // namespace streamq
