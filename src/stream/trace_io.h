#ifndef STREAMQ_STREAM_TRACE_IO_H_
#define STREAMQ_STREAM_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace streamq {

/// Persists an arrival-ordered event stream as CSV with header
/// `id,key,event_time,arrival_time,value`. This is the interchange format
/// standing in for the paper's proprietary traces: any real feed converted
/// to this format replays through the engine unchanged.
Status SaveTrace(const std::string& path, const std::vector<Event>& events);

/// Loads a trace saved by SaveTrace (or produced externally in the same
/// format). Validates field count and numeric parse; does NOT require
/// arrival order (it re-sorts), so externally recorded traces are safe.
Result<std::vector<Event>> LoadTrace(const std::string& path);

}  // namespace streamq

#endif  // STREAMQ_STREAM_TRACE_IO_H_
