#include "agg/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"

namespace streamq {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Downcasts `other` to `T`, aborting on mismatch.
template <typename T>
const T& CastOrDie(const Aggregator& other, std::string_view name) {
  const T* cast = dynamic_cast<const T*>(&other);
  STREAMQ_CHECK(cast != nullptr)
      << "Merge type mismatch: expected " << name << ", got " << other.name();
  return *cast;
}

class CountAggregator : public Aggregator {
 public:
  void Add(double) override { ++count_; }
  void Merge(const Aggregator& other) override {
    count_ += CastOrDie<CountAggregator>(other, name()).count_;
  }
  double Value() const override { return static_cast<double>(count_); }
  int64_t count() const override { return count_; }
  std::unique_ptr<Aggregator> MakeEmpty() const override {
    return std::make_unique<CountAggregator>();
  }
  std::string_view name() const override { return "count"; }

 private:
  int64_t count_ = 0;
};

class SumAggregator : public Aggregator {
 public:
  void Add(double v) override {
    // Kahan-compensated sum: windows can be long-lived and values small.
    const double y = v - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
    ++count_;
  }
  void Merge(const Aggregator& other) override {
    const auto& o = CastOrDie<SumAggregator>(other, name());
    Addend(o.sum_);
    count_ += o.count_;
  }
  double Value() const override { return sum_; }
  int64_t count() const override { return count_; }
  std::unique_ptr<Aggregator> MakeEmpty() const override {
    return std::make_unique<SumAggregator>();
  }
  std::string_view name() const override { return "sum"; }

 private:
  void Addend(double v) {
    const double y = v - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  double sum_ = 0.0;
  double compensation_ = 0.0;
  int64_t count_ = 0;
};

class MomentsAggregator : public Aggregator {
 public:
  enum class Stat { kMean, kVariance, kStdDev };
  explicit MomentsAggregator(Stat stat) : stat_(stat) {}

  void Add(double v) override { moments_.Add(v); }
  void Merge(const Aggregator& other) override {
    moments_.Merge(CastOrDie<MomentsAggregator>(other, name()).moments_);
  }
  double Value() const override {
    if (moments_.count() == 0) return kNan;
    switch (stat_) {
      case Stat::kMean:
        return moments_.mean();
      case Stat::kVariance:
        return moments_.variance();
      case Stat::kStdDev:
        return moments_.stddev();
    }
    return kNan;
  }
  int64_t count() const override { return moments_.count(); }
  std::unique_ptr<Aggregator> MakeEmpty() const override {
    return std::make_unique<MomentsAggregator>(stat_);
  }
  std::string_view name() const override {
    switch (stat_) {
      case Stat::kMean:
        return "mean";
      case Stat::kVariance:
        return "variance";
      case Stat::kStdDev:
        return "stddev";
    }
    return "?";
  }

 private:
  Stat stat_;
  RunningMoments moments_;
};

class MinMaxAggregator : public Aggregator {
 public:
  explicit MinMaxAggregator(bool is_min) : is_min_(is_min) {}

  void Add(double v) override {
    if (count_ == 0) {
      extreme_ = v;
    } else {
      extreme_ = is_min_ ? std::min(extreme_, v) : std::max(extreme_, v);
    }
    ++count_;
  }
  void Merge(const Aggregator& other) override {
    const auto& o = CastOrDie<MinMaxAggregator>(other, name());
    STREAMQ_CHECK_EQ(is_min_, o.is_min_);
    if (o.count_ == 0) return;
    if (count_ == 0) {
      extreme_ = o.extreme_;
    } else {
      extreme_ =
          is_min_ ? std::min(extreme_, o.extreme_) : std::max(extreme_, o.extreme_);
    }
    count_ += o.count_;
  }
  double Value() const override { return count_ > 0 ? extreme_ : kNan; }
  int64_t count() const override { return count_; }
  std::unique_ptr<Aggregator> MakeEmpty() const override {
    return std::make_unique<MinMaxAggregator>(is_min_);
  }
  std::string_view name() const override { return is_min_ ? "min" : "max"; }

 private:
  bool is_min_;
  double extreme_ = 0.0;
  int64_t count_ = 0;
};

class QuantileAggregator : public Aggregator {
 public:
  explicit QuantileAggregator(double q) : q_(q) {}

  void Add(double v) override { values_.push_back(v); }
  void Merge(const Aggregator& other) override {
    const auto& o = CastOrDie<QuantileAggregator>(other, name());
    values_.insert(values_.end(), o.values_.begin(), o.values_.end());
  }
  double Value() const override {
    if (values_.empty()) return kNan;
    return ExactQuantile(values_, q_);
  }
  int64_t count() const override {
    return static_cast<int64_t>(values_.size());
  }
  std::unique_ptr<Aggregator> MakeEmpty() const override {
    return std::make_unique<QuantileAggregator>(q_);
  }
  std::string_view name() const override {
    return q_ == 0.5 ? "median" : "quantile";
  }

 private:
  double q_;
  std::vector<double> values_;
};

class DistinctCountAggregator : public Aggregator {
 public:
  void Add(double v) override {
    ++count_;
    seen_.insert(v);
  }
  void Merge(const Aggregator& other) override {
    const auto& o = CastOrDie<DistinctCountAggregator>(other, name());
    seen_.insert(o.seen_.begin(), o.seen_.end());
    count_ += o.count_;
  }
  double Value() const override { return static_cast<double>(seen_.size()); }
  int64_t count() const override { return count_; }
  std::unique_ptr<Aggregator> MakeEmpty() const override {
    return std::make_unique<DistinctCountAggregator>();
  }
  std::string_view name() const override { return "distinct"; }

 private:
  std::unordered_set<double> seen_;
  int64_t count_ = 0;
};

}  // namespace

std::string AggregateSpec::Describe() const {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMean:
      return "mean";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kVariance:
      return "variance";
    case AggKind::kStdDev:
      return "stddev";
    case AggKind::kMedian:
      return "median";
    case AggKind::kQuantile: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "quantile(%.2f)", quantile_q);
      return buf;
    }
    case AggKind::kDistinctCount:
      return "distinct";
  }
  return "?";
}

Status AggregateSpec::Validate() const {
  if (kind == AggKind::kQuantile &&
      (quantile_q <= 0.0 || quantile_q >= 1.0)) {
    return Status::InvalidArgument("quantile_q must be in (0, 1)");
  }
  return Status::OK();
}

Result<AggregateSpec> ParseAggregateSpec(const std::string& text) {
  AggregateSpec spec;
  if (text == "count") {
    spec.kind = AggKind::kCount;
  } else if (text == "sum") {
    spec.kind = AggKind::kSum;
  } else if (text == "mean" || text == "avg") {
    spec.kind = AggKind::kMean;
  } else if (text == "min") {
    spec.kind = AggKind::kMin;
  } else if (text == "max") {
    spec.kind = AggKind::kMax;
  } else if (text == "variance" || text == "var") {
    spec.kind = AggKind::kVariance;
  } else if (text == "stddev") {
    spec.kind = AggKind::kStdDev;
  } else if (text == "median") {
    spec.kind = AggKind::kMedian;
  } else if (text == "distinct") {
    spec.kind = AggKind::kDistinctCount;
  } else if (text.rfind("quantile:", 0) == 0) {
    spec.kind = AggKind::kQuantile;
    const std::string qs = text.substr(9);
    char* end = nullptr;
    spec.quantile_q = std::strtod(qs.c_str(), &end);
    if (end != qs.c_str() + qs.size() || qs.empty()) {
      return Status::InvalidArgument("bad quantile in aggregate spec: " + text);
    }
    STREAMQ_RETURN_NOT_OK(spec.Validate());
  } else {
    return Status::InvalidArgument("unknown aggregate: " + text);
  }
  return spec;
}

std::unique_ptr<Aggregator> MakeAggregator(const AggregateSpec& spec) {
  STREAMQ_CHECK_OK(spec.Validate());
  switch (spec.kind) {
    case AggKind::kCount:
      return std::make_unique<CountAggregator>();
    case AggKind::kSum:
      return std::make_unique<SumAggregator>();
    case AggKind::kMean:
      return std::make_unique<MomentsAggregator>(
          MomentsAggregator::Stat::kMean);
    case AggKind::kMin:
      return std::make_unique<MinMaxAggregator>(/*is_min=*/true);
    case AggKind::kMax:
      return std::make_unique<MinMaxAggregator>(/*is_min=*/false);
    case AggKind::kVariance:
      return std::make_unique<MomentsAggregator>(
          MomentsAggregator::Stat::kVariance);
    case AggKind::kStdDev:
      return std::make_unique<MomentsAggregator>(
          MomentsAggregator::Stat::kStdDev);
    case AggKind::kMedian:
      return std::make_unique<QuantileAggregator>(0.5);
    case AggKind::kQuantile:
      return std::make_unique<QuantileAggregator>(spec.quantile_q);
    case AggKind::kDistinctCount:
      return std::make_unique<DistinctCountAggregator>();
  }
  STREAMQ_LOG(Fatal) << "unknown aggregate kind";
  return nullptr;
}

double DefaultQualityGamma(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
      return 1.0;
    case AggKind::kMean:
      return 0.7;  // Sampling error shrinks with coverage faster than mass.
    case AggKind::kMin:
    case AggKind::kMax:
      return 0.3;  // Extremes survive missing tuples with high probability.
    case AggKind::kVariance:
    case AggKind::kStdDev:
      return 0.8;
    case AggKind::kMedian:
    case AggKind::kQuantile:
      return 0.5;
    case AggKind::kDistinctCount:
      return 0.9;
  }
  return 1.0;
}

}  // namespace streamq
