#ifndef STREAMQ_AGG_AGGREGATE_H_
#define STREAMQ_AGG_AGGREGATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace streamq {

/// Aggregate functions computable over a window of values.
enum class AggKind {
  kCount,
  kSum,
  kMean,
  kMin,
  kMax,
  kVariance,  // Population variance.
  kStdDev,
  kMedian,
  kQuantile,       // Arbitrary q, exact (stores values).
  kDistinctCount,  // Exact distinct count of (bit-exact) values.
};

/// Parameterized aggregate selection.
struct AggregateSpec {
  AggKind kind = AggKind::kSum;
  /// For kQuantile: the quantile in (0, 1).
  double quantile_q = 0.5;

  /// "sum", "quantile(0.90)", ...
  std::string Describe() const;

  Status Validate() const;
};

/// Parses "count", "sum", "mean"/"avg", "min", "max", "variance"/"var",
/// "stddev", "median", "quantile:<q>" (e.g. "quantile:0.9"), "distinct".
Result<AggregateSpec> ParseAggregateSpec(const std::string& text);

/// Incremental accumulator for one window instance. Implementations are
/// mergeable so partial (pre-)aggregation and tests can combine them.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Folds one value in.
  virtual void Add(double v) = 0;

  /// Merges another accumulator of the same concrete type. Aborts on type
  /// mismatch (programming error).
  virtual void Merge(const Aggregator& other) = 0;

  /// Current aggregate value. Result for an empty window is
  /// aggregate-specific (0 for count/sum, NaN for mean/min/max/quantiles).
  virtual double Value() const = 0;

  /// Number of values folded in.
  virtual int64_t count() const = 0;

  /// Fresh empty accumulator of the same kind.
  virtual std::unique_ptr<Aggregator> MakeEmpty() const = 0;

  virtual std::string_view name() const = 0;
};

/// Instantiates an accumulator. Aborts on invalid spec (Validate() first
/// for recoverable handling).
std::unique_ptr<Aggregator> MakeAggregator(const AggregateSpec& spec);

/// Default quality-model exponent (see PowerQualityModel) for each
/// aggregate: how sharply missing tuples translate into result error.
/// Order-statistics aggregates (min/max/quantile) are robust (gamma < 1);
/// mass aggregates (count/sum) are proportional (gamma = 1); spread
/// aggregates are slightly amplifying. These defaults are starting points —
/// quality/value_error_model.h fits gamma per workload.
double DefaultQualityGamma(AggKind kind);

}  // namespace streamq

#endif  // STREAMQ_AGG_AGGREGATE_H_
