#ifndef STREAMQ_AGG_AGGREGATE_STATE_H_
#define STREAMQ_AGG_AGGREGATE_STATE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "agg/aggregate.h"

namespace streamq {

/// Fixed-size, trivially copyable accumulator for the light ("inline")
/// aggregate kinds: count, sum, mean, min, max, variance, stddev. The
/// per-tuple fold is a handful of inlined flops — no heap allocation, no
/// virtual dispatch. Heavy kinds (median/quantile/distinct) store values and
/// stay behind the polymorphic Aggregator interface.
///
/// Field meaning depends on the kind (the tag lives at the operator level —
/// one operator instance aggregates one kind, so states carry no tag byte):
///
///   kind               f0            f1              n
///   count              —             —               count
///   sum                Kahan sum     compensation    count
///   mean/var/stddev    Welford mean  Welford M2      count
///   min/max            extreme       —               count
///
/// Equivalence contract: every fold/merge/value below replicates the
/// corresponding polymorphic Aggregator (agg/aggregate.cc) operation
/// for operation, in the same order — Kahan-compensated sum, Welford
/// update, Chan merge — so a sequence of folds produces bit-identical
/// results on either implementation (agg_state_test pins this).
struct AggregateState {
  double f0 = 0.0;
  double f1 = 0.0;
  int64_t n = 0;
};
static_assert(std::is_trivially_copyable_v<AggregateState>);
static_assert(sizeof(AggregateState) == 24);

/// True for kinds whose accumulator fits AggregateState.
constexpr bool IsInlineAggKind(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kMean:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kVariance:
    case AggKind::kStdDev:
      return true;
    case AggKind::kMedian:
    case AggKind::kQuantile:
    case AggKind::kDistinctCount:
      return false;
  }
  return false;
}

/// True when merging partial states is bit-identical to folding the same
/// values one at a time, for any grouping: integer counting and min/max
/// selection are grouping-insensitive; compensated sums and Welford moments
/// are not (regrouping changes rounding in the last ulps). Pane-shared
/// folding is only enabled by default for kinds where this holds, which is
/// what keeps the pane path byte-identical to the per-tuple path.
constexpr bool PaneMergeIsExact(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kMin:
    case AggKind::kMax:
      return true;
    default:
      return false;
  }
}

namespace agg_internal {
constexpr double kStateNan = std::numeric_limits<double>::quiet_NaN();
}

/// Folds one value in. Replicates the matching Aggregator::Add bit-for-bit.
template <AggKind K>
inline void InlineFold(AggregateState& s, double v) {
  static_assert(IsInlineAggKind(K));
  if constexpr (K == AggKind::kCount) {
    (void)v;
    ++s.n;
  } else if constexpr (K == AggKind::kSum) {
    const double y = v - s.f1;
    const double t = s.f0 + y;
    s.f1 = (t - s.f0) - y;
    s.f0 = t;
    ++s.n;
  } else if constexpr (K == AggKind::kMean || K == AggKind::kVariance ||
                       K == AggKind::kStdDev) {
    ++s.n;
    const double delta = v - s.f0;
    s.f0 += delta / static_cast<double>(s.n);
    s.f1 += delta * (v - s.f0);
  } else if constexpr (K == AggKind::kMin) {
    s.f0 = (s.n == 0) ? v : std::min(s.f0, v);
    ++s.n;
  } else if constexpr (K == AggKind::kMax) {
    s.f0 = (s.n == 0) ? v : std::max(s.f0, v);
    ++s.n;
  }
}

/// Merges a partial state in. Replicates Aggregator::Merge bit-for-bit
/// (Kahan add of the partial sum, Chan et al. moment combination).
template <AggKind K>
inline void InlineMerge(AggregateState& s, const AggregateState& o) {
  static_assert(IsInlineAggKind(K));
  if constexpr (K == AggKind::kCount) {
    s.n += o.n;
  } else if constexpr (K == AggKind::kSum) {
    const double y = o.f0 - s.f1;
    const double t = s.f0 + y;
    s.f1 = (t - s.f0) - y;
    s.f0 = t;
    s.n += o.n;
  } else if constexpr (K == AggKind::kMean || K == AggKind::kVariance ||
                       K == AggKind::kStdDev) {
    if (o.n == 0) return;
    if (s.n == 0) {
      s = o;
      return;
    }
    const double delta = o.f0 - s.f0;
    const auto n1 = static_cast<double>(s.n);
    const auto n2 = static_cast<double>(o.n);
    const double n = n1 + n2;
    s.f0 += delta * n2 / n;
    s.f1 += o.f1 + delta * delta * n1 * n2 / n;
    s.n += o.n;
  } else if constexpr (K == AggKind::kMin) {
    if (o.n == 0) return;
    s.f0 = (s.n == 0) ? o.f0 : std::min(s.f0, o.f0);
    s.n += o.n;
  } else if constexpr (K == AggKind::kMax) {
    if (o.n == 0) return;
    s.f0 = (s.n == 0) ? o.f0 : std::max(s.f0, o.f0);
    s.n += o.n;
  }
}

/// Current aggregate value; same empty-window conventions as the
/// polymorphic Aggregators (0 for count/sum, NaN otherwise).
template <AggKind K>
inline double InlineValue(const AggregateState& s) {
  static_assert(IsInlineAggKind(K));
  if constexpr (K == AggKind::kCount) {
    return static_cast<double>(s.n);
  } else if constexpr (K == AggKind::kSum) {
    return s.f0;
  } else if constexpr (K == AggKind::kMean) {
    return s.n == 0 ? agg_internal::kStateNan : s.f0;
  } else if constexpr (K == AggKind::kVariance) {
    if (s.n == 0) return agg_internal::kStateNan;
    return s.n < 2 ? 0.0 : s.f1 / static_cast<double>(s.n);
  } else if constexpr (K == AggKind::kStdDev) {
    if (s.n == 0) return agg_internal::kStateNan;
    return s.n < 2 ? 0.0 : std::sqrt(s.f1 / static_cast<double>(s.n));
  } else {  // kMin / kMax
    return s.n > 0 ? s.f0 : agg_internal::kStateNan;
  }
}

/// Runtime-dispatched variants for cold paths (late tuples, emission).
/// Same operations as the templates — one switch per call.
void InlineFoldDyn(AggKind kind, AggregateState& s, double v);
void InlineMergeDyn(AggKind kind, AggregateState& s, const AggregateState& o);
double InlineValueDyn(AggKind kind, const AggregateState& s);

}  // namespace streamq

#endif  // STREAMQ_AGG_AGGREGATE_STATE_H_
