#include "agg/aggregate_state.h"

#include "common/logging.h"

namespace streamq {

namespace {

/// Expands `MACRO(K)` for every inline kind — keeps the three dynamic
/// dispatchers in lockstep with IsInlineAggKind.
#define STREAMQ_FOR_EACH_INLINE_KIND(MACRO) \
  MACRO(AggKind::kCount)                    \
  MACRO(AggKind::kSum)                      \
  MACRO(AggKind::kMean)                     \
  MACRO(AggKind::kMin)                      \
  MACRO(AggKind::kMax)                      \
  MACRO(AggKind::kVariance)                 \
  MACRO(AggKind::kStdDev)

}  // namespace

void InlineFoldDyn(AggKind kind, AggregateState& s, double v) {
  switch (kind) {
#define STREAMQ_CASE(K) \
  case K:               \
    InlineFold<K>(s, v); \
    return;
    STREAMQ_FOR_EACH_INLINE_KIND(STREAMQ_CASE)
#undef STREAMQ_CASE
    default:
      STREAMQ_LOG(Fatal) << "InlineFoldDyn on non-inline aggregate kind";
  }
}

void InlineMergeDyn(AggKind kind, AggregateState& s, const AggregateState& o) {
  switch (kind) {
#define STREAMQ_CASE(K)  \
  case K:                \
    InlineMerge<K>(s, o); \
    return;
    STREAMQ_FOR_EACH_INLINE_KIND(STREAMQ_CASE)
#undef STREAMQ_CASE
    default:
      STREAMQ_LOG(Fatal) << "InlineMergeDyn on non-inline aggregate kind";
  }
}

double InlineValueDyn(AggKind kind, const AggregateState& s) {
  switch (kind) {
#define STREAMQ_CASE(K) \
  case K:               \
    return InlineValue<K>(s);
    STREAMQ_FOR_EACH_INLINE_KIND(STREAMQ_CASE)
#undef STREAMQ_CASE
    default:
      STREAMQ_LOG(Fatal) << "InlineValueDyn on non-inline aggregate kind";
  }
  return 0.0;
}

#undef STREAMQ_FOR_EACH_INLINE_KIND

}  // namespace streamq
