#include "control/pi_controller.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace streamq {

PiController::PiController(const Options& options) : options_(options) {
  STREAMQ_CHECK_LE(options.out_min, options.out_max);
  STREAMQ_CHECK_GE(options.integral_limit, 0.0);
}

double PiController::Update(double error) {
  const double p_term = options_.kp * error;

  // Tentatively integrate, then apply anti-windup: if the clamped output is
  // saturated and the error pushes further into saturation, roll back.
  const double new_integral = std::clamp(integral_ + options_.ki * error,
                                         -options_.integral_limit,
                                         options_.integral_limit);
  double raw = p_term + new_integral;
  const double clamped = std::clamp(raw, options_.out_min, options_.out_max);
  const bool saturated_high = raw > options_.out_max && error > 0.0;
  const bool saturated_low = raw < options_.out_min && error < 0.0;
  if (!saturated_high && !saturated_low) {
    integral_ = new_integral;
  }
  output_ = clamped;
  return output_;
}

void PiController::Reset() {
  integral_ = 0.0;
  output_ = 0.0;
}

std::string PiController::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "PI{kp=%.3f ki=%.3f out=%.4f integral=%.4f}", options_.kp,
                options_.ki, output_, integral_);
  return buf;
}

SlewRateLimiter::SlewRateLimiter(double max_delta) : max_delta_(max_delta) {
  STREAMQ_CHECK_GT(max_delta, 0.0);
}

double SlewRateLimiter::Apply(double target) {
  if (!initialized_) {
    value_ = target;
    initialized_ = true;
    return value_;
  }
  const double delta = std::clamp(target - value_, -max_delta_, max_delta_);
  value_ += delta;
  return value_;
}

void SlewRateLimiter::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

Deadband::Deadband(double width) : width_(width) {
  STREAMQ_CHECK_GE(width, 0.0);
}

double Deadband::Apply(double target) {
  if (!initialized_) {
    value_ = target;
    initialized_ = true;
    return value_;
  }
  if (std::fabs(target - value_) > width_) {
    value_ = target;
  }
  return value_;
}

void Deadband::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace streamq
