#ifndef STREAMQ_CONTROL_PI_CONTROLLER_H_
#define STREAMQ_CONTROL_PI_CONTROLLER_H_

#include <string>

namespace streamq {

/// Discrete proportional–integral controller with output clamping and
/// conditional anti-windup (the integrator freezes while the output is
/// saturated in the direction of the error).
///
/// Used by the quality-driven buffer: error = target quality - achieved
/// quality; output = trim applied to the delay-quantile setpoint.
class PiController {
 public:
  struct Options {
    double kp = 0.5;
    double ki = 0.1;
    double out_min = -1.0;
    double out_max = 1.0;
    /// Absolute clamp for the integral term's contribution.
    double integral_limit = 1.0;
  };

  explicit PiController(const Options& options);

  /// Feeds one error sample; returns the new control output.
  double Update(double error);

  /// Last output (0 before the first update).
  double output() const { return output_; }

  /// Current integral accumulator (ki-weighted).
  double integral() const { return integral_; }

  void Reset();

  const Options& options() const { return options_; }

  std::string ToString() const;

 private:
  Options options_;
  double integral_ = 0.0;
  double output_ = 0.0;
};

/// Limits the per-step change of a signal; protects the buffer from
/// whiplash when a noisy quality estimate jumps.
class SlewRateLimiter {
 public:
  /// `max_delta` is the largest allowed |change| per Apply() call.
  explicit SlewRateLimiter(double max_delta);

  /// Returns `target` moved toward from the previous output by at most
  /// max_delta. First call passes through.
  double Apply(double target);

  void Reset();

 private:
  double max_delta_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Suppresses changes smaller than a threshold (returns the held value),
/// avoiding constant micro-adjustments of the buffer bound.
class Deadband {
 public:
  explicit Deadband(double width);

  double Apply(double target);

  void Reset();

 private:
  double width_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_CONTROL_PI_CONTROLLER_H_
