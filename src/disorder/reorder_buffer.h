#ifndef STREAMQ_DISORDER_REORDER_BUFFER_H_
#define STREAMQ_DISORDER_REORDER_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/time.h"
#include "stream/event.h"

namespace streamq {

/// Buffer of events keyed by (event_time, id). The common substrate of
/// every buffering disorder handler: insert on arrival, pop in event-time
/// order up to a release threshold.
///
/// Pop order is fully determined by the total order (event_time, id), so the
/// internal layout is unobservable; the two engines below are exactly
/// interchangeable, sequence for sequence.
///
///  * Engine::kHeap — binary min-heap (the reference engine). O(log n)
///    sift per push, per-element sift-down pops with a partition + sort
///    fallback for bulk releases.
///  * Engine::kRing — slack-aligned bucket ring (calendar-queue style, the
///    default). Events append O(1) into power-of-two-width time buckets;
///    PopUpTo releases whole buckets below the threshold and sorts only
///    the one boundary bucket. Because K-slack release thresholds advance
///    monotonically with the frontier, each event is sorted once within
///    its (small) bucket: O(1) amortized per operation independent of
///    buffer size. The bucket width auto-resizes from the observed
///    event-time span of the buffer (≈ the slack K), so buffers from 10^2
///    to 10^6 events keep a bounded bucket count and bounded bucket
///    population.
class ReorderBuffer {
 public:
  enum class Engine { kHeap, kRing };

  explicit ReorderBuffer(Engine engine = Engine::kRing) : engine_(engine) {}

  /// Switches engines. Only legal while the buffer is empty (there is no
  /// cross-engine migration; handlers select the engine before ingesting).
  void SetEngine(Engine engine);

  Engine engine() const { return engine_; }

  /// Attaches a slab arena: bucket and heap storage is acquired from — and,
  /// on destruction, recycled into — the arena instead of the heap, so the
  /// steady state allocates nothing even as shards come and go. Only legal
  /// while the buffer is empty; nullptr detaches. The arena must outlive
  /// the buffer (GlobalEventArena always does).
  void SetArena(EventArena* arena);

  EventArena* arena() const { return arena_; }

  ~ReorderBuffer();

  /// Inserts one event. Takes the event by value and moves it into the
  /// buffer so the hot path pays a single copy at the call boundary.
  void Push(Event e) {
    if (engine_ == Engine::kRing) {
      RingPush(std::move(e));
    } else {
      HeapPush(std::move(e));
    }
  }

  /// Bulk insert. Equivalent to Push-ing every element in order. The heap
  /// engine chooses between per-element sift-up (small batches) and a full
  /// O(n) heapify (batches comparable to the buffer) by cost estimate; the
  /// ring engine appends element-wise (already O(1) each).
  void PushBatch(std::span<const Event> events);

  bool empty() const { return size() == 0; }
  size_t size() const {
    return engine_ == Engine::kRing ? ring_size_ : heap_.size();
  }

  /// Largest size ever reached (memory footprint instrumentation).
  size_t max_size() const { return max_size_; }

  /// Event time of the earliest buffered event. Buffer must be non-empty.
  TimestampUs MinEventTime() const;

  /// Pops the earliest event into `*out`. Buffer must be non-empty.
  void PopMin(Event* out);

  /// Pops every event with event_time <= threshold, appending to `*out` in
  /// event-time order. Returns the number popped. Output capacity is
  /// reserved against a cheap per-release upper bound (releasable-bucket
  /// populations for the ring, the bulk-partition count for the heap), not
  /// against the whole buffer, so small releases never pay a full-buffer
  /// reservation.
  size_t PopUpTo(TimestampUs threshold, std::vector<Event>* out);

  /// Drains the entire buffer in event-time order into `*out` (end of
  /// stream).
  size_t DrainInto(std::vector<Event>* out);

  void Clear();

 private:
  static bool Less(const Event& a, const Event& b) {
    if (a.event_time != b.event_time) return a.event_time < b.event_time;
    return a.id < b.id;
  }

  // --- Heap engine -------------------------------------------------------

  void HeapPush(Event e) {
    if (heap_.capacity() == 0) ReserveHeapStorage();
    heap_.push_back(std::move(e));
    SiftUp(heap_.size() - 1);
    if (heap_.size() > max_size_) max_size_ = heap_.size();
  }
  void HeapPopMin(Event* out);
  size_t HeapPopUpTo(TimestampUs threshold, std::vector<Event>* out);
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Heapify();
  void ReserveHeapStorage();

  // --- Ring engine -------------------------------------------------------

  /// One time bucket: live events occupy [head, events.size()); `sorted`
  /// says the live range is ascending by (event_time, id). The dead prefix
  /// [0, head) lets repeated partial releases from the boundary bucket pop
  /// a sorted prefix without shifting the tail; it is reclaimed when the
  /// bucket empties or is next resorted.
  struct RingBucket {
    std::vector<Event> events;
    size_t head = 0;
    bool sorted = false;

    size_t live() const { return events.size() - head; }
    bool LiveEmpty() const { return head == events.size(); }
    void Reset() {
      events.clear();
      head = 0;
      sorted = false;
    }
  };

  size_t RingIndex(int64_t q) const {
    return static_cast<size_t>(static_cast<uint64_t>(q) & (ring_.size() - 1));
  }
  RingBucket& RingAt(int64_t q) { return ring_[RingIndex(q)]; }
  const RingBucket& RingAt(int64_t q) const { return ring_[RingIndex(q)]; }

  void RingPush(Event e);
  void RingPopMin(Event* out);
  /// First allocation for a virgin bucket: from the arena when attached.
  void ReserveBucket(RingBucket* b);
  size_t RingPopUpTo(TimestampUs threshold, std::vector<Event>* out);
  size_t RingDrainInto(std::vector<Event>* out);

  /// Compacts the dead prefix and sorts the live range (no-op if sorted).
  void EnsureSortedLive(RingBucket* b);

  /// Grows the ring so `span` bucket indices fit (power-of-two capacity;
  /// existing buckets are remapped by masking, as in FlatWindowStore).
  void RingGrowCapacity(uint64_t span);

  /// Re-buckets every live event under a new bucket-width shift.
  void RingRebucket(int new_shift);

  /// First-allocation size for a virgin bucket: the buffer's current mean
  /// live-bucket population, clamped (deep buffers open big buckets).
  size_t RingBucketReserve() const;

  /// Smallest shift whose bucket count over [lo, hi] stays at or below the
  /// target live-bucket count.
  static int DesiredShift(TimestampUs lo, TimestampUs hi);

  /// Advances q_min_ past drained buckets (resets the span when empty).
  void RingAdvanceMin();

  Engine engine_;
  EventArena* arena_ = nullptr;
  size_t max_size_ = 0;

  // Heap engine state.
  std::vector<Event> heap_;

  // Ring engine state. The span [q_min_, q_max_] is valid iff
  // ring_size_ > 0; ring capacity is a power of two covering it.
  std::vector<RingBucket> ring_;
  int shift_ = kInitialShift;
  int64_t q_min_ = 0;
  int64_t q_max_ = -1;
  size_t ring_size_ = 0;

  static constexpr int kInitialShift = 8;        // 256 us buckets.
  static constexpr int kMaxShift = 40;           // ~13 days; overflow guard.
  static constexpr size_t kInitialRingCapacity = 64;
  /// Width adaptation aims here; widening triggers at kMaxLiveBuckets and
  /// narrowing at kNarrowSpanBuckets (hysteresis keeps the two apart).
  static constexpr int64_t kTargetLiveBuckets = 256;
  static constexpr int64_t kMaxLiveBuckets = 4096;
  static constexpr int64_t kNarrowSpanBuckets = 16;
  static constexpr size_t kNarrowMinEvents = 256;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_REORDER_BUFFER_H_
