#ifndef STREAMQ_DISORDER_REORDER_BUFFER_H_
#define STREAMQ_DISORDER_REORDER_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/time.h"
#include "stream/event.h"

namespace streamq {

/// Min-heap of events keyed by (event_time, id). The common substrate of
/// every buffering disorder handler: insert on arrival, pop in event-time
/// order up to a release threshold.
///
/// Pop order is fully determined by the total order (event_time, id), so the
/// internal array layout is unobservable; the batch operations below exploit
/// that to replace per-element sift chains with bulk heapify/partition/sort
/// passes while remaining exactly equivalent to their one-at-a-time
/// counterparts.
class ReorderBuffer {
 public:
  /// Inserts one event. Takes the event by value and moves it into the heap
  /// so the hot path pays a single copy at the call boundary.
  void Push(Event e) {
    heap_.push_back(std::move(e));
    SiftUp(heap_.size() - 1);
    if (heap_.size() > max_size_) max_size_ = heap_.size();
  }

  /// Bulk insert: appends the whole span and restores the heap invariant in
  /// one pass. Equivalent to Push-ing every element in order. Chooses
  /// between per-element sift-up (small batches) and a full O(n) heapify
  /// (batches comparable to the buffer) by cost estimate.
  void PushBatch(std::span<const Event> events);

  /// True if the buffer is empty.
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Largest size ever reached (memory footprint instrumentation).
  size_t max_size() const { return max_size_; }

  /// Event time of the earliest buffered event. Buffer must be non-empty.
  TimestampUs MinEventTime() const;

  /// Pops the earliest event into `*out`. Buffer must be non-empty.
  void PopMin(Event* out);

  /// Pops every event with event_time <= threshold, appending to `*out` in
  /// event-time order. Returns the number popped. Small releases pop one at
  /// a time; large releases switch to a partition + sort of the releasable
  /// suffix, which replaces k O(log n) sift-downs with one O(n + k log k)
  /// pass.
  size_t PopUpTo(TimestampUs threshold, std::vector<Event>* out);

  /// Drains the entire buffer in event-time order into `*out` (end of
  /// stream). Equivalent to PopUpTo(kMaxTimestamp, out) but sorts the array
  /// directly instead of popping element by element.
  size_t DrainInto(std::vector<Event>* out);

  void Clear();

 private:
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Heapify();
  static bool Less(const Event& a, const Event& b) {
    if (a.event_time != b.event_time) return a.event_time < b.event_time;
    return a.id < b.id;
  }

  std::vector<Event> heap_;
  size_t max_size_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_REORDER_BUFFER_H_
