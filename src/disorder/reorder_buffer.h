#ifndef STREAMQ_DISORDER_REORDER_BUFFER_H_
#define STREAMQ_DISORDER_REORDER_BUFFER_H_

#include <cstddef>
#include <vector>

#include "common/time.h"
#include "stream/event.h"

namespace streamq {

/// Min-heap of events keyed by (event_time, id). The common substrate of
/// every buffering disorder handler: insert on arrival, pop in event-time
/// order up to a release threshold.
class ReorderBuffer {
 public:
  void Push(const Event& e);

  /// True if the buffer is empty.
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Largest size ever reached (memory footprint instrumentation).
  size_t max_size() const { return max_size_; }

  /// Event time of the earliest buffered event. Buffer must be non-empty.
  TimestampUs MinEventTime() const;

  /// Pops the earliest event into `*out`. Buffer must be non-empty.
  void PopMin(Event* out);

  /// Pops every event with event_time <= threshold, appending to `*out` in
  /// event-time order. Returns the number popped.
  size_t PopUpTo(TimestampUs threshold, std::vector<Event>* out);

  void Clear();

 private:
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  static bool Less(const Event& a, const Event& b) {
    if (a.event_time != b.event_time) return a.event_time < b.event_time;
    return a.id < b.id;
  }

  std::vector<Event> heap_;
  size_t max_size_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_REORDER_BUFFER_H_
