#include "disorder/fixed_kslack.h"

#include "common/logging.h"

namespace streamq {

FixedKSlack::FixedKSlack(DurationUs k, bool collect_latency_samples)
    : BufferedHandlerBase(collect_latency_samples), k_(k) {
  STREAMQ_CHECK_GE(k, 0);
}

void FixedKSlack::OnEvent(const Event& e, EventSink* sink) {
  if (!Ingest(e, sink)) return;
  ReleaseUpTo(ReleaseThreshold(k_), e.arrival_time, sink);
}

void FixedKSlack::OnBatch(std::span<const Event> batch, EventSink* sink) {
  struct Policy {
    DurationUs k;
    void BeforeIngest(const Event&) {}
    void AfterIngest(const Event&, bool) {}
    DurationUs slack() const { return k; }
  };
  ProcessBatch(batch, sink, Policy{k_});
}

void FixedKSlack::Flush(EventSink* sink) { DrainAll(last_activity_, sink); }

}  // namespace streamq
