#include "disorder/mp_kslack.h"

#include <cmath>

#include "common/logging.h"

namespace streamq {

MpKSlack::MpKSlack(const Options& options)
    : BufferedHandlerBase(options.collect_latency_samples),
      options_(options) {
  STREAMQ_CHECK_GT(options.window_size, 0);
  STREAMQ_CHECK_GE(options.safety_factor, 0.0);
}

void MpKSlack::ObserveLateness(DurationUs lateness) {
  const DurationUs old_k = k_;
  if (options_.mode == Mode::kGrowOnly) {
    const auto scaled = ClampSlack(static_cast<DurationUs>(
        std::ceil(static_cast<double>(lateness) * options_.safety_factor)));
    if (scaled > k_) k_ = scaled;
  } else {
    // Sliding max over the last window_size observations.
    while (!max_deque_.empty() && max_deque_.back().second <= lateness) {
      max_deque_.pop_back();
    }
    max_deque_.emplace_back(tuple_index_, lateness);
    const int64_t cutoff = tuple_index_ - options_.window_size;
    while (!max_deque_.empty() && max_deque_.front().first <= cutoff) {
      max_deque_.pop_front();
    }
    const DurationUs bound =
        max_deque_.empty() ? 0 : max_deque_.front().second;
    k_ = ClampSlack(static_cast<DurationUs>(
        std::ceil(static_cast<double>(bound) * options_.safety_factor)));
  }
  if (observer_ != nullptr && k_ != old_k) {
    observer_->OnSlackChanged(old_k, k_);
  }
}

void MpKSlack::OnEvent(const Event& e, EventSink* sink) {
  // Lateness w.r.t. the frontier *before* this tuple updates it.
  DurationUs lateness = 0;
  if (t_max_ != kMinTimestamp && e.event_time < t_max_) {
    lateness = t_max_ - e.event_time;
  }
  ++tuple_index_;
  ObserveLateness(lateness);
  if (!Ingest(e, sink)) return;
  ReleaseUpTo(ReleaseThreshold(k_), e.arrival_time, sink);
}

void MpKSlack::OnBatch(std::span<const Event> batch, EventSink* sink) {
  struct Policy {
    MpKSlack* self;
    void BeforeIngest(const Event& e) {
      DurationUs lateness = 0;
      if (self->t_max_ != kMinTimestamp && e.event_time < self->t_max_) {
        lateness = self->t_max_ - e.event_time;
      }
      ++self->tuple_index_;
      self->ObserveLateness(lateness);
    }
    void AfterIngest(const Event&, bool) {}
    DurationUs slack() const { return self->k_; }
  };
  ProcessBatch(batch, sink, Policy{this});
}

void MpKSlack::Flush(EventSink* sink) { DrainAll(last_activity_, sink); }

}  // namespace streamq
