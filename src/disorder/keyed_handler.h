#ifndef STREAMQ_DISORDER_KEYED_HANDLER_H_
#define STREAMQ_DISORDER_KEYED_HANDLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "disorder/disorder_handler.h"

namespace streamq {

/// Per-key disorder handling: one inner handler instance per key, with the
/// output watermark taken as the *minimum* over per-key watermarks.
///
/// When keys have heterogeneous delay distributions (sources behind
/// different gateways), one global buffer must be sized for the worst key —
/// every key pays the slowest key's latency. Per-key buffers let each key
/// run at its own quantile. The costs: state per key, and the merged
/// watermark trails the slowest key (an idle key stalls it — feed
/// heartbeats to advance idle keys; OnHeartbeat fans out to every inner
/// handler).
///
/// Output contract: OnEvent calls are event-time ordered *per key* (not
/// globally), and every emitted event is >= the last emitted merged
/// watermark. This is exactly what keyed window state needs; downstream
/// operators that require global order should use a global handler.
///
/// Data layout (see DESIGN.md §9): shards live in a dense vector routed
/// through an open-addressing probe table (same idiom as FlatWindowStore),
/// so the per-tuple path is one hash + one probe instead of a std::map
/// walk. The merged minimum watermark is kept in a position-indexed binary
/// min-heap over shard watermarks (O(log #keys) when a shard's watermark
/// rises, O(1) to read), and `buffered()` / `current_slack()` are O(1)
/// reads of incrementally maintained aggregates. OnBatch segments a batch
/// into consecutive same-key runs and hands each run to the inner
/// handler's OnBatch, preserving the per-event sink sequence exactly.
class KeyedDisorderHandler : public DisorderHandler {
 public:
  /// Builds one inner handler per key on first sight of that key.
  using HandlerFactory = std::function<std::unique_ptr<DisorderHandler>()>;

  explicit KeyedDisorderHandler(HandlerFactory factory);
  ~KeyedDisorderHandler() override;

  std::string_view name() const override { return "keyed"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnBatch(std::span<const Event> batch, EventSink* sink) override;
  void OnHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time,
                   EventSink* sink) override;
  void Flush(EventSink* sink) override;

  /// Mean of per-key slacks (instrumentation; keys may differ wildly).
  /// O(1): reads the incrementally maintained per-shard slack sum.
  DurationUs current_slack() const override;

  /// Total buffered tuples across shards. O(1): incrementally maintained.
  size_t buffered() const override;

  /// Number of distinct keys seen.
  size_t key_count() const { return shards_.size(); }

  /// Inner handler for `key`, or nullptr if the key was never seen.
  const DisorderHandler* shard(int64_t key) const;

  /// Propagates the observer to every inner handler, existing and future.
  /// The outer handler itself stays unobserved: every release already
  /// notifies through the inner handler that produced it, and observing
  /// both layers would double-count latencies and late events.
  void set_observer(PipelineObserver* observer) override;

  /// Propagates the buffer engine to every inner handler, existing and
  /// future. Only legal before the first arrival.
  void set_buffer_engine(ReorderBuffer::Engine engine) override;

  /// Propagates the slab arena to every inner handler, existing and
  /// future — the case the arena exists for: keyed workloads create and
  /// destroy per-key buffers continuously, and pooling their bucket
  /// storage removes that churn from the heap.
  void set_buffer_arena(EventArena* arena) override;

  /// Global buffer budget across all keys: the keyed handler enforces the
  /// cap itself (the inner handlers stay uncapped) by shedding from the
  /// fullest shard before dispatching an arrival that would overflow it.
  void set_buffer_cap(size_t max_buffered_events, ShedPolicy policy) override;

  /// Propagates the adaptive-K clamp to every inner handler, existing and
  /// future.
  void set_max_slack(DurationUs max_slack) override;

 private:
  struct Shard;

  /// Returns the shard for `key`, creating it on first sight; refreshes the
  /// last-key memo.
  Shard* Route(int64_t key);
  Shard* FindShard(int64_t key) const;
  void InsertProbe(uint32_t dense_index);
  void RehashProbe(size_t new_capacity);

  /// Shard indices in ascending key order (heartbeat/flush fan-out order,
  /// matching the per-key determinism of the old ordered-map layout).
  /// Rebuilt lazily after new keys appear.
  const std::vector<uint32_t>& SortedByKey() const;

  /// Folds one shard-op's effect into the aggregates: occupancy total and
  /// peak, and the slack sum.
  void FinishShardOp(Shard* shard);
  void ObserveOccupancy(size_t occupancy);

  /// Cold path when the global budget is exhausted: sheds one tuple from
  /// the fullest shard (kEmitEarly/kDropOldest) or consumes the arrival
  /// (kDropNewest). Returns true if the caller should dispatch `e`.
  bool MakeRoomForArrival(const Event& e, EventSink* sink);

  /// Re-heaps after `shard`'s watermark rose.
  void RaiseShardWatermark(Shard* shard);
  void WmHeapSiftUp(size_t pos);
  void WmHeapSiftDown(size_t pos);

  /// Emits the merged-minimum watermark if it advanced.
  void EmitMergedIfAdvanced(TimestampUs stream_time, EventSink* sink);

  HandlerFactory factory_;
  /// Dense shard storage (stable pointers; shards are never erased) plus
  /// the open-addressing probe table: 0 = empty, else dense index + 1.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<uint32_t> probe_;
  mutable std::vector<uint32_t> by_key_;
  mutable bool by_key_dirty_ = false;
  /// Binary min-heap of dense shard indices ordered by shard watermark;
  /// each shard stores its heap position for O(log n) increase-key.
  std::vector<uint32_t> wm_heap_;

  TimestampUs merged_watermark_ = kMinTimestamp;
  TimestampUs last_stream_time_ = 0;
  /// Memo of the last routed key: consecutive same-key arrivals skip the
  /// probe lookup (shard pointers are stable; shards are never erased).
  int64_t last_key_ = 0;
  Shard* last_shard_ = nullptr;
  /// Observer handed to every inner handler (including ones created later).
  PipelineObserver* shard_observer_ = nullptr;
  bool has_buffer_engine_ = false;
  ReorderBuffer::Engine buffer_engine_ = ReorderBuffer::Engine::kRing;
  /// Arena handed to every inner handler (including ones created later).
  EventArena* buffer_arena_ = nullptr;

  /// Global buffer budget (0 = unbounded) and the policy applied when it
  /// is exhausted.
  size_t max_buffered_events_ = 0;
  ShedPolicy shed_policy_ = ShedPolicy::kEmitEarly;
  /// Adaptive-K clamp handed to every inner handler.
  DurationUs max_slack_ = 0;
  /// Donor memo for shedding: the last known fullest shard. Reused until
  /// it empties, then rescanned — amortized O(1) under a sustained storm.
  Shard* shed_donor_ = nullptr;

  /// Incremental aggregates over shards (satellite: O(1) reads).
  size_t buffered_total_ = 0;
  int64_t slack_sum_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_KEYED_HANDLER_H_
