#ifndef STREAMQ_DISORDER_KEYED_HANDLER_H_
#define STREAMQ_DISORDER_KEYED_HANDLER_H_

#include <functional>
#include <map>
#include <memory>

#include "disorder/disorder_handler.h"

namespace streamq {

/// Per-key disorder handling: one inner handler instance per key, with the
/// output watermark taken as the *minimum* over per-key watermarks.
///
/// When keys have heterogeneous delay distributions (sources behind
/// different gateways), one global buffer must be sized for the worst key —
/// every key pays the slowest key's latency. Per-key buffers let each key
/// run at its own quantile. The costs: state per key, and the merged
/// watermark trails the slowest key (an idle key stalls it — feed
/// heartbeats to advance idle keys; OnHeartbeat fans out to every inner
/// handler).
///
/// Output contract: OnEvent calls are event-time ordered *per key* (not
/// globally), and every emitted event is >= the last emitted merged
/// watermark. This is exactly what keyed window state needs; downstream
/// operators that require global order should use a global handler.
class KeyedDisorderHandler : public DisorderHandler {
 public:
  /// Builds one inner handler per key on first sight of that key.
  using HandlerFactory = std::function<std::unique_ptr<DisorderHandler>()>;

  explicit KeyedDisorderHandler(HandlerFactory factory);
  ~KeyedDisorderHandler() override;

  std::string_view name() const override { return "keyed"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time,
                   EventSink* sink) override;
  void Flush(EventSink* sink) override;

  /// Mean of per-key slacks (instrumentation; keys may differ wildly).
  DurationUs current_slack() const override;

  size_t buffered() const override;

  /// Number of distinct keys seen.
  size_t key_count() const { return shards_.size(); }

  /// Inner handler for `key`, or nullptr if the key was never seen.
  const DisorderHandler* shard(int64_t key) const;

  /// Propagates the observer to every inner handler, existing and future.
  /// The outer handler itself stays unobserved: every release already
  /// notifies through the inner handler that produced it, and observing
  /// both layers would double-count latencies and late events.
  void set_observer(PipelineObserver* observer) override;

 private:
  struct Shard;

  /// Recomputes the merged watermark and forwards it if it advanced.
  void MaybeEmitMergedWatermark(TimestampUs stream_time, EventSink* sink);

  HandlerFactory factory_;
  std::map<int64_t, std::unique_ptr<Shard>> shards_;
  TimestampUs merged_watermark_ = kMinTimestamp;
  TimestampUs last_stream_time_ = 0;
  /// Memo of the last routed key: consecutive same-key arrivals skip the
  /// shard-map lookup (shard pointers are stable; shards are never erased).
  int64_t last_key_ = 0;
  Shard* last_shard_ = nullptr;
  /// Observer handed to every inner handler (including ones created later).
  PipelineObserver* shard_observer_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_KEYED_HANDLER_H_
