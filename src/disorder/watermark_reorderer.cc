#include "disorder/watermark_reorderer.h"

#include "common/logging.h"

namespace streamq {

WatermarkReorderer::WatermarkReorderer(const Options& options)
    : BufferedHandlerBase(options.collect_latency_samples),
      options_(options) {
  STREAMQ_CHECK_GE(options.bound, 0);
  STREAMQ_CHECK_GT(options.period_events, 0);
  STREAMQ_CHECK_GE(options.allowed_lateness, 0);
}

void WatermarkReorderer::OnEvent(const Event& e, EventSink* sink) {
  // Drop hopeless tuples before the generic late-divert path: beyond the
  // allowed lateness they would be useless downstream.
  if (emitted_frontier_ != kMinTimestamp &&
      e.event_time < emitted_frontier_ &&
      emitted_frontier_ - e.event_time > options_.allowed_lateness) {
    ++stats_.events_in;
    ++stats_.events_late;
    ++stats_.events_dropped;
    if (observer_ != nullptr) {
      observer_->OnLateEvent(e);  // Dropped tuples are late tuples too.
      observer_->OnEventDropped(e);
    }
    return;
  }

  Ingest(e, sink);

  if (++since_tick_ >= options_.period_events) {
    since_tick_ = 0;
    ReleaseUpTo(ReleaseThreshold(options_.bound), e.arrival_time, sink);
  }
}

void WatermarkReorderer::OnBatch(std::span<const Event> batch,
                                 EventSink* sink) {
  // Manual loop instead of the ProcessBatch policy: the drop path diverts
  // tuples *before* Ingest, and releases tick on the arrival counter rather
  // than per buffered tuple — neither fits the policy contract. The body
  // replays OnEvent exactly; inlining it here still hoists the virtual
  // dispatch out of the loop.
  for (const Event& e : batch) {
    if (emitted_frontier_ != kMinTimestamp &&
        e.event_time < emitted_frontier_ &&
        emitted_frontier_ - e.event_time > options_.allowed_lateness) {
      ++stats_.events_in;
      ++stats_.events_late;
      ++stats_.events_dropped;
      if (observer_ != nullptr) {
        observer_->OnLateEvent(e);
        observer_->OnEventDropped(e);
      }
      continue;
    }
    Ingest(e, sink);
    if (++since_tick_ >= options_.period_events) {
      since_tick_ = 0;
      ReleaseUpTo(ReleaseThreshold(options_.bound), e.arrival_time, sink);
    }
  }
}

void WatermarkReorderer::Flush(EventSink* sink) {
  DrainAll(last_activity_, sink);
}

}  // namespace streamq
