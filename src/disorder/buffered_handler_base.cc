#include "disorder/buffered_handler_base.h"

namespace streamq {

void BufferedHandlerBase::OnHeartbeat(TimestampUs event_time_bound,
                                      TimestampUs stream_time,
                                      EventSink* sink) {
  last_activity_ = std::max(last_activity_, stream_time);
  t_max_ = (t_max_ == kMinTimestamp) ? event_time_bound
                                     : std::max(t_max_, event_time_bound);
  ReleaseUpTo(ReleaseThreshold(current_slack()), stream_time, sink);
}

size_t BufferedHandlerBase::ShedToOccupancy(size_t target, ShedPolicy policy,
                                            TimestampUs now, EventSink* sink) {
  if (buffer_.size() <= target) return 0;
  // kDropNewest is an arrival-side policy: the tuple to discard is the one
  // that has not been buffered yet, so there is nothing to shed here.
  if (policy == ShedPolicy::kDropNewest) return 0;
  const size_t excess = buffer_.size() - target;

  if (policy == ShedPolicy::kDropOldest) {
    Event e;
    for (size_t i = 0; i < excess; ++i) buffer_.PopMin(&e);
    stats_.events_shed += static_cast<int64_t>(excess);
    if (observer_ != nullptr) {
      observer_->OnShed(static_cast<int64_t>(excess), policy);
    }
    return excess;
  }

  // kEmitEarly: release the oldest tuples now, exactly as a normal release
  // would, and advance the watermark to the last released event time. Every
  // tuple still in the buffer is >= that time (PopMin order), so downstream
  // ordering and watermark monotonicity are preserved; the quality cost is
  // that later arrivals behind the advanced watermark divert late.
  release_scratch_.clear();
  release_scratch_.reserve(excess);
  Event e;
  for (size_t i = 0; i < excess; ++i) {
    buffer_.PopMin(&e);
    RecordRelease(e, now);
    release_scratch_.push_back(std::move(e));
  }
  stats_.events_force_released += static_cast<int64_t>(excess);
  sink->OnEvents(release_scratch_, now);
  if (observer_ != nullptr) {
    observer_->OnShed(static_cast<int64_t>(excess), policy);
    observer_->OnHandlerRelease(static_cast<int64_t>(excess), buffer_.size(),
                                release_scratch_.back().event_time);
  }
  const TimestampUs wm = release_scratch_.back().event_time;
  if (emitted_frontier_ == kMinTimestamp || wm > emitted_frontier_) {
    emitted_frontier_ = wm;
    sink->OnWatermark(emitted_frontier_, now);
  }
  return excess;
}

bool BufferedHandlerBase::MakeRoomForIngest(const Event& e, EventSink* sink) {
  // A tuple already behind the watermark will be diverted late, never
  // buffered: no room needed.
  if (emitted_frontier_ != kMinTimestamp && e.event_time < emitted_frontier_) {
    return true;
  }
  // Prefer a legitimate release over shedding: Ingest already advanced
  // t_max for this arrival, so tuples the handler's current slack would
  // release on this step may free room at zero quality cost. Without this,
  // kDropNewest under sustained pressure would wedge — failed ingests skip
  // the caller's release, so the buffer would never drain.
  ReleaseUpTo(ReleaseThreshold(current_slack()), e.arrival_time, sink);
  if (buffer_.size() < max_buffered_events_) {
    return true;
  }
  if (shed_policy_ == ShedPolicy::kDropNewest) {
    ++stats_.events_shed;
    if (observer_ != nullptr) observer_->OnShed(1, shed_policy_);
    return false;
  }
  // After shedding (kEmitEarly may advance the watermark past e), the
  // caller's lateness check decides whether e is buffered or diverted.
  ShedToOccupancy(max_buffered_events_ - 1, shed_policy_, e.arrival_time,
                  sink);
  return true;
}

void BufferedHandlerBase::DrainAll(TimestampUs now, EventSink* sink) {
  release_scratch_.clear();
  if (buffer_.DrainInto(&release_scratch_) > 0) {
    for (const Event& e : release_scratch_) RecordRelease(e, now);
    sink->OnEvents(release_scratch_, now);
  }
  emitted_frontier_ = kMaxTimestamp;
  sink->OnWatermark(kMaxTimestamp, now);
}

}  // namespace streamq
