#include "disorder/buffered_handler_base.h"

namespace streamq {

void BufferedHandlerBase::OnHeartbeat(TimestampUs event_time_bound,
                                      TimestampUs stream_time,
                                      EventSink* sink) {
  last_activity_ = std::max(last_activity_, stream_time);
  t_max_ = (t_max_ == kMinTimestamp) ? event_time_bound
                                     : std::max(t_max_, event_time_bound);
  ReleaseUpTo(ReleaseThreshold(current_slack()), stream_time, sink);
}

void BufferedHandlerBase::DrainAll(TimestampUs now, EventSink* sink) {
  release_scratch_.clear();
  if (buffer_.DrainInto(&release_scratch_) > 0) {
    for (const Event& e : release_scratch_) RecordRelease(e, now);
    sink->OnEvents(release_scratch_, now);
  }
  emitted_frontier_ = kMaxTimestamp;
  sink->OnWatermark(kMaxTimestamp, now);
}

}  // namespace streamq
