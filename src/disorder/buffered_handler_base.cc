#include "disorder/buffered_handler_base.h"

namespace streamq {

void BufferedHandlerBase::OnHeartbeat(TimestampUs event_time_bound,
                                      TimestampUs stream_time,
                                      EventSink* sink) {
  last_activity_ = std::max(last_activity_, stream_time);
  t_max_ = (t_max_ == kMinTimestamp) ? event_time_bound
                                     : std::max(t_max_, event_time_bound);
  ReleaseUpTo(ReleaseThreshold(current_slack()), stream_time, sink);
}

bool BufferedHandlerBase::Ingest(const Event& e, EventSink* sink) {
  ++stats_.events_in;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  t_max_ = (t_max_ == kMinTimestamp) ? e.event_time
                                     : std::max(t_max_, e.event_time);
  if (emitted_frontier_ != kMinTimestamp &&
      e.event_time < emitted_frontier_) {
    ++stats_.events_late;
    sink->OnLateEvent(e);
    return false;
  }
  buffer_.Push(e);
  stats_.max_buffer_size = std::max(
      stats_.max_buffer_size, static_cast<int64_t>(buffer_.size()));
  return true;
}

void BufferedHandlerBase::ReleaseUpTo(TimestampUs threshold, TimestampUs now,
                                      EventSink* sink) {
  if (threshold == kMinTimestamp) return;
  release_scratch_.clear();
  buffer_.PopUpTo(threshold, &release_scratch_);
  for (const Event& e : release_scratch_) {
    RecordRelease(e, now);
    sink->OnEvent(e);
  }
  if (emitted_frontier_ == kMinTimestamp || threshold > emitted_frontier_) {
    emitted_frontier_ = threshold;
    sink->OnWatermark(emitted_frontier_, now);
  }
}

void BufferedHandlerBase::DrainAll(TimestampUs now, EventSink* sink) {
  release_scratch_.clear();
  buffer_.PopUpTo(kMaxTimestamp, &release_scratch_);
  for (const Event& e : release_scratch_) {
    RecordRelease(e, now);
    sink->OnEvent(e);
  }
  emitted_frontier_ = kMaxTimestamp;
  sink->OnWatermark(kMaxTimestamp, now);
}

}  // namespace streamq
