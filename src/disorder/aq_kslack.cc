#include "disorder/aq_kslack.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace streamq {

AqKSlack::AqKSlack(const Options& options,
                   std::unique_ptr<QualityModel> quality_model)
    : BufferedHandlerBase(options.collect_latency_samples),
      options_(options),
      quality_model_(quality_model ? std::move(quality_model)
                                   : MakeCoverageQualityModel()),
      lateness_sketch_(options.sketch_window),
      lateness_reservoir_(options.sketch_window, /*seed=*/0x5EED),
      pi_(PiController::Options{
          .kp = options.kp,
          .ki = options.ki,
          .out_min = -options.trim_limit,
          .out_max = options.trim_limit,
          .integral_limit = options.trim_limit,
      }) {
  STREAMQ_CHECK_GT(options.target_quality, 0.0);
  STREAMQ_CHECK_LE(options.target_quality, 1.0);
  STREAMQ_CHECK_GT(options.adaptation_interval, 0);
  STREAMQ_CHECK_GT(options.p_min, 0.0);
  STREAMQ_CHECK_LE(options.p_max, 1.0);
  STREAMQ_CHECK_LT(options.p_min, options.p_max);
  STREAMQ_CHECK_GT(options.max_step, 0.0);
  STREAMQ_CHECK_GT(options.quality_smoothing_alpha, 0.0);
  STREAMQ_CHECK_LE(options.quality_smoothing_alpha, 1.0);
  // Feed-forward initialization: before any measurement, set the quantile
  // setpoint to the coverage the quality model requires.
  p_ = std::clamp(quality_model_->CoverageForQuality(options.target_quality),
                  options.p_min, options.p_max);
}

void AqKSlack::OnEvent(const Event& e, EventSink* sink) {
  ++tuple_index_;
  ++interval_events_;

  // Observe lateness against the pre-update frontier: this is exactly the
  // buffer size this tuple would have needed.
  if (t_max_ != kMinTimestamp && e.event_time < t_max_) {
    ObserveLateness(static_cast<double>(t_max_ - e.event_time));
  } else {
    ObserveLateness(0.0);
  }

  const int64_t late_before = stats_.events_late;
  const bool buffered = Ingest(e, sink);
  if (stats_.events_late > late_before) {
    ++interval_late_;  // Tuple missed the watermark: a quality loss.
  }

  if (interval_events_ >= options_.adaptation_interval) {
    Adapt(e.arrival_time);
  }
  if (buffered) {
    ReleaseUpTo(ReleaseThreshold(k_), e.arrival_time, sink);
  }
}

void AqKSlack::OnBatch(std::span<const Event> batch, EventSink* sink) {
  struct Policy {
    AqKSlack* self;
    void BeforeIngest(const Event& e) {
      ++self->tuple_index_;
      ++self->interval_events_;
      if (self->t_max_ != kMinTimestamp && e.event_time < self->t_max_) {
        self->ObserveLateness(static_cast<double>(self->t_max_ - e.event_time));
      } else {
        self->ObserveLateness(0.0);
      }
    }
    void AfterIngest(const Event& e, bool was_buffered) {
      // Ingest returns false exactly when it diverted the tuple late.
      if (!was_buffered) ++self->interval_late_;
      if (self->interval_events_ >= self->options_.adaptation_interval) {
        self->Adapt(e.arrival_time);
      }
    }
    DurationUs slack() const { return self->k_; }
  };
  ProcessBatch(batch, sink, Policy{this});
}

void AqKSlack::Adapt(TimestampUs now) {
  // --- Measure: coverage over the last interval -> quality via the model.
  const double interval_coverage =
      interval_events_ > 0
          ? 1.0 - static_cast<double>(interval_late_) /
                      static_cast<double>(interval_events_)
          : 1.0;
  const double interval_quality =
      quality_model_->QualityFromCoverage(interval_coverage);
  if (!have_measurement_) {
    measured_quality_ = interval_quality;
    have_measurement_ = true;
  } else {
    measured_quality_ =
        options_.quality_smoothing_alpha * interval_quality +
        (1.0 - options_.quality_smoothing_alpha) * measured_quality_;
  }
  interval_events_ = 0;
  interval_late_ = 0;

  // --- Feed-forward term: coverage the model says we need.
  const double feed_forward = std::clamp(
      quality_model_->CoverageForQuality(options_.target_quality),
      options_.p_min, options_.p_max);

  // --- Feedback term: PI on the quality error. Positive error (quality
  // below target) pushes the setpoint up.
  const double error = options_.target_quality - measured_quality_;
  const double trim = pi_.Update(error);

  // --- Combine, slew-limit, clamp.
  double target_p = std::clamp(feed_forward + trim, options_.p_min,
                               options_.p_max);
  const double step =
      std::clamp(target_p - p_, -options_.max_step, options_.max_step);
  p_ += step;

  // --- Translate the quantile setpoint into a concrete slack (clamped so
  // the control loop cannot request a buffer the cap forbids).
  const DurationUs old_k = k_;
  k_ = ClampSlack(static_cast<DurationUs>(std::ceil(LatenessQuantile(p_))));

  if (observer_ != nullptr) {
    if (k_ != old_k) observer_->OnSlackChanged(old_k, k_);
    observer_->OnAdaptation(AdaptationSample{
        .tuple_index = tuple_index_,
        .stream_time = now,
        .measured = measured_quality_,
        .setpoint = p_,
        .k = k_,
        .buffer_size = buffer_.size(),
    });
  }

  if (record_trace_) {
    adaptation_trace_.push_back(AdaptationRecord{
        .tuple_index = tuple_index_,
        .stream_time = now,
        .measured_quality = measured_quality_,
        .setpoint = p_,
        .k = k_,
        .buffer_size = buffer_.size(),
    });
  }
}

void AqKSlack::ObserveLateness(double lateness) {
  if (options_.estimator == Estimator::kSlidingWindow) {
    lateness_sketch_.Add(lateness);
  } else {
    lateness_reservoir_.Add(lateness);
  }
}

double AqKSlack::LatenessQuantile(double p) const {
  if (options_.estimator == Estimator::kSlidingWindow) {
    return lateness_sketch_.Quantile(p);
  }
  return lateness_reservoir_.Quantile(p);
}

void AqKSlack::Flush(EventSink* sink) { DrainAll(last_activity_, sink); }

}  // namespace streamq
