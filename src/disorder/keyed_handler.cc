#include "disorder/keyed_handler.h"

#include <algorithm>

#include "common/logging.h"
#include "core/pipeline_observer.h"

namespace streamq {

namespace {

/// Fibonacci multiplicative hash (same mix as FlatWindowStore): spreads
/// sequential keys across the probe table.
inline size_t MixKey(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

constexpr size_t kInitialProbeCapacity = 16;

}  // namespace

/// One key's inner handler plus the sink adapter that captures its
/// watermarks (which must not reach downstream directly: only the merged
/// minimum may).
struct KeyedDisorderHandler::Shard {
  class Intercept : public EventSink {
   public:
    Intercept(KeyedDisorderHandler* outer, Shard* shard)
        : outer_(outer), shard_(shard) {}

    void OnEvent(const Event& e) override {
      // Only non-buffering inner handlers (pass-through) emit per-event;
      // they forward the tuple being processed, so its own arrival time is
      // "now" except in the flush fan-out, which pins an explicit now.
      outer_->RecordRelease(e, use_fixed_now_ ? now_ : e.arrival_time);
      out_->OnEvent(e);
    }

    void OnEvents(std::span<const Event> events) override {
      OnEvents(events, now_);
    }

    void OnEvents(std::span<const Event> events,
                  TimestampUs stream_time) override {
      if (events.empty()) return;
      const TimestampUs now = use_fixed_now_ ? now_ : stream_time;
      for (const Event& e : events) outer_->RecordRelease(e, now);
      // Occupancy just before this release: the released tuples were still
      // buffered, and the arrival that triggered the release had already
      // been inserted. Sampling `pre - 1` here plus the end-of-run total in
      // FinishShardOp reproduces the per-event occupancy maximum exactly
      // (occupancy only rises between releases).
      outer_->ObserveOccupancy(run_base_ + shard_->handler->buffered() +
                               events.size() - 1);
      out_->OnEvents(events);
    }

    void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
      if (watermark > shard_->watermark) {
        shard_->watermark = watermark;
        outer_->RaiseShardWatermark(shard_);
        out_->OnKeyedWatermark(shard_->key, watermark, stream_time);
        // During heartbeat/flush fan-out the merged emission is deferred to
        // a single end-of-loop check; on the event path it happens here, at
        // exactly the per-event emission point (at most one watermark move
        // per tuple).
        if (!defer_merged_) {
          outer_->EmitMergedIfAdvanced(stream_time, out_);
        }
      }
    }

    void OnLateEvent(const Event& e) override {
      ++outer_->stats_.events_late;
      out_->OnLateEvent(e);
    }

    /// Per-shard-op context: the downstream sink, the pinned "now" (used
    /// for every release when `use_fixed_now`, otherwise only as a
    /// fallback), merged-emission mode, and the occupancy of all *other*
    /// shards at op start.
    void Arm(EventSink* out, TimestampUs now, bool use_fixed_now,
             bool defer_merged, size_t run_base) {
      out_ = out;
      now_ = now;
      use_fixed_now_ = use_fixed_now;
      defer_merged_ = defer_merged;
      run_base_ = run_base;
    }

    size_t run_base() const { return run_base_; }

   private:
    KeyedDisorderHandler* outer_;
    Shard* shard_;
    EventSink* out_ = nullptr;
    TimestampUs now_ = 0;
    bool use_fixed_now_ = false;
    bool defer_merged_ = false;
    size_t run_base_ = 0;
  };

  Shard(KeyedDisorderHandler* outer, int64_t shard_key)
      : key(shard_key), intercept(outer, this) {}

  int64_t key;
  std::unique_ptr<DisorderHandler> handler;
  TimestampUs watermark = kMinTimestamp;
  /// Cached aggregate contributions (see FinishShardOp).
  DurationUs last_slack = 0;
  size_t last_buffered = 0;
  /// Inner events_dropped already mirrored into the keyed stats. Drops
  /// (e.g. a watermark reorderer discarding beyond allowed lateness) never
  /// reach the intercept, so they must be reconciled from the inner stats.
  int64_t last_dropped = 0;
  /// This shard's position in wm_heap_.
  size_t heap_pos = 0;
  Intercept intercept;
};

KeyedDisorderHandler::KeyedDisorderHandler(HandlerFactory factory)
    : factory_(std::move(factory)) {
  STREAMQ_CHECK(factory_ != nullptr);
}

KeyedDisorderHandler::~KeyedDisorderHandler() = default;

KeyedDisorderHandler::Shard* KeyedDisorderHandler::FindShard(
    int64_t key) const {
  if (probe_.empty()) return nullptr;
  const size_t mask = probe_.size() - 1;
  size_t idx = MixKey(key) & mask;
  while (true) {
    const uint32_t slot = probe_[idx];
    if (slot == 0) return nullptr;
    Shard* s = shards_[slot - 1].get();
    if (s->key == key) return s;
    idx = (idx + 1) & mask;
  }
}

void KeyedDisorderHandler::InsertProbe(uint32_t dense_index) {
  const size_t mask = probe_.size() - 1;
  size_t idx = MixKey(shards_[dense_index]->key) & mask;
  while (probe_[idx] != 0) idx = (idx + 1) & mask;
  probe_[idx] = dense_index + 1;
}

void KeyedDisorderHandler::RehashProbe(size_t new_capacity) {
  probe_.assign(new_capacity, 0);
  for (size_t i = 0; i < shards_.size(); ++i) {
    InsertProbe(static_cast<uint32_t>(i));
  }
}

KeyedDisorderHandler::Shard* KeyedDisorderHandler::Route(int64_t key) {
  Shard* shard = FindShard(key);
  if (shard == nullptr) {
    // Keep the probe table under 70% load.
    if ((shards_.size() + 1) * 10 >= probe_.size() * 7) {
      RehashProbe(probe_.empty() ? kInitialProbeCapacity : probe_.size() * 2);
    }
    auto owned = std::make_unique<Shard>(this, key);
    owned->handler = factory_();
    STREAMQ_CHECK(owned->handler != nullptr);
    if (shard_observer_ != nullptr) {
      owned->handler->set_observer(shard_observer_);
    }
    if (has_buffer_engine_) {
      owned->handler->set_buffer_engine(buffer_engine_);
    }
    if (buffer_arena_ != nullptr) {
      owned->handler->set_buffer_arena(buffer_arena_);
    }
    if (max_slack_ > 0) {
      owned->handler->set_max_slack(max_slack_);
    }
    shard = owned.get();
    shards_.push_back(std::move(owned));
    InsertProbe(static_cast<uint32_t>(shards_.size() - 1));
    shard->last_slack = shard->handler->current_slack();
    slack_sum_ += shard->last_slack;
    shard->last_buffered = shard->handler->buffered();
    buffered_total_ += shard->last_buffered;
    shard->heap_pos = wm_heap_.size();
    wm_heap_.push_back(static_cast<uint32_t>(shards_.size() - 1));
    WmHeapSiftUp(shard->heap_pos);
    by_key_dirty_ = true;
  }
  last_key_ = key;
  last_shard_ = shard;
  return shard;
}

const std::vector<uint32_t>& KeyedDisorderHandler::SortedByKey() const {
  if (by_key_dirty_) {
    by_key_.resize(shards_.size());
    for (size_t i = 0; i < by_key_.size(); ++i) {
      by_key_[i] = static_cast<uint32_t>(i);
    }
    std::sort(by_key_.begin(), by_key_.end(), [this](uint32_t a, uint32_t b) {
      return shards_[a]->key < shards_[b]->key;
    });
    by_key_dirty_ = false;
  }
  return by_key_;
}

void KeyedDisorderHandler::FinishShardOp(Shard* shard) {
  const size_t b = shard->handler->buffered();
  buffered_total_ = shard->intercept.run_base() + b;
  shard->last_buffered = b;
  ObserveOccupancy(buffered_total_);
  const DurationUs s = shard->handler->current_slack();
  slack_sum_ += s - shard->last_slack;
  shard->last_slack = s;
  // Mirror silent inner drops (counted late+dropped there, no sink
  // callback) so the keyed conservation identity in == out + late + shed
  // stays exact.
  const int64_t dropped = shard->handler->stats().events_dropped;
  if (dropped != shard->last_dropped) {
    stats_.events_late += dropped - shard->last_dropped;
    stats_.events_dropped += dropped - shard->last_dropped;
    shard->last_dropped = dropped;
  }
}

void KeyedDisorderHandler::ObserveOccupancy(size_t occupancy) {
  if (static_cast<int64_t>(occupancy) > stats_.max_buffer_size) {
    stats_.max_buffer_size = static_cast<int64_t>(occupancy);
  }
}

bool KeyedDisorderHandler::MakeRoomForArrival(const Event& e,
                                              EventSink* sink) {
  if (shed_policy_ == ShedPolicy::kDropNewest) {
    ++stats_.events_in;
    ++stats_.events_shed;
    last_stream_time_ = std::max(last_stream_time_, e.arrival_time);
    if (shard_observer_ != nullptr) {
      shard_observer_->OnShed(1, shed_policy_);
    }
    return false;
  }
  // Shed one tuple from the fullest shard through its armed intercept, so
  // releases, per-key watermarks and the merged minimum all follow the
  // normal bookkeeping.
  Shard* donor = shed_donor_;
  if (donor == nullptr || donor->last_buffered == 0) {
    donor = nullptr;
    for (const auto& s : shards_) {
      if (donor == nullptr || s->last_buffered > donor->last_buffered) {
        donor = s.get();
      }
    }
    shed_donor_ = donor;
  }
  if (donor == nullptr || donor->last_buffered == 0) {
    // Aggregate says full but no shard holds tuples — cannot happen; be
    // permissive rather than wedge the stream.
    return true;
  }
  donor->intercept.Arm(sink, e.arrival_time, /*use_fixed_now=*/false,
                       /*defer_merged=*/false,
                       buffered_total_ - donor->last_buffered);
  const size_t shed = donor->handler->ShedToOccupancy(
      donor->last_buffered - 1, shed_policy_, e.arrival_time,
      &donor->intercept);
  FinishShardOp(donor);
  // Mirror the inner handler's accounting at the keyed level (the inner
  // stats are not merged upward; the intercept already counted any
  // emit-early releases in events_out). The inner handler also notified
  // the observer, so no OnShed here.
  if (shed_policy_ == ShedPolicy::kEmitEarly) {
    stats_.events_force_released += static_cast<int64_t>(shed);
  } else {
    stats_.events_shed += static_cast<int64_t>(shed);
  }
  return true;
}

void KeyedDisorderHandler::OnEvent(const Event& e, EventSink* sink) {
  if (max_buffered_events_ != 0 &&
      buffered_total_ >= max_buffered_events_) [[unlikely]] {
    if (!MakeRoomForArrival(e, sink)) return;
  }
  ++stats_.events_in;
  last_stream_time_ = std::max(last_stream_time_, e.arrival_time);
  Shard* shard = (last_shard_ != nullptr && last_key_ == e.key)
                     ? last_shard_
                     : Route(e.key);
  shard->intercept.Arm(sink, e.arrival_time, /*use_fixed_now=*/false,
                       /*defer_merged=*/false,
                       buffered_total_ - shard->last_buffered);
  shard->handler->OnEvent(e, &shard->intercept);
  FinishShardOp(shard);
}

void KeyedDisorderHandler::OnBatch(std::span<const Event> batch,
                                   EventSink* sink) {
  const size_t n = batch.size();
  size_t i = 0;
  while (i < n) {
    const int64_t key = batch[i].key;
    TimestampUs run_max_arrival = batch[i].arrival_time;
    size_t j = i + 1;
    while (j < n && batch[j].key == key) {
      run_max_arrival = std::max(run_max_arrival, batch[j].arrival_time);
      ++j;
    }
    if (max_buffered_events_ != 0 &&
        buffered_total_ + (j - i) > max_buffered_events_) [[unlikely]] {
      // The run could overflow the global budget mid-way; fall back to
      // per-event dispatch so every arrival makes its own room. (When the
      // whole run provably fits — each arrival adds at most one buffered
      // tuple — the fast path below cannot violate the cap.)
      for (size_t k = i; k < j; ++k) OnEvent(batch[k], sink);
      i = j;
      continue;
    }
    stats_.events_in += static_cast<int64_t>(j - i);
    last_stream_time_ = std::max(last_stream_time_, run_max_arrival);
    Shard* shard =
        (last_shard_ != nullptr && last_key_ == key) ? last_shard_
                                                     : Route(key);
    shard->intercept.Arm(sink, batch[i].arrival_time, /*use_fixed_now=*/false,
                         /*defer_merged=*/false,
                         buffered_total_ - shard->last_buffered);
    shard->handler->OnBatch(batch.subspan(i, j - i), &shard->intercept);
    FinishShardOp(shard);
    i = j;
  }
}

void KeyedDisorderHandler::OnHeartbeat(TimestampUs event_time_bound,
                                       TimestampUs stream_time,
                                       EventSink* sink) {
  last_stream_time_ = std::max(last_stream_time_, stream_time);
  for (const uint32_t idx : SortedByKey()) {
    Shard* shard = shards_[idx].get();
    shard->intercept.Arm(sink, stream_time, /*use_fixed_now=*/false,
                         /*defer_merged=*/true,
                         buffered_total_ - shard->last_buffered);
    shard->handler->OnHeartbeat(event_time_bound, stream_time,
                                &shard->intercept);
    FinishShardOp(shard);
  }
  if (!shards_.empty()) EmitMergedIfAdvanced(stream_time, sink);
}

void KeyedDisorderHandler::Flush(EventSink* sink) {
  for (const uint32_t idx : SortedByKey()) {
    Shard* shard = shards_[idx].get();
    shard->intercept.Arm(sink, last_stream_time_, /*use_fixed_now=*/true,
                         /*defer_merged=*/true,
                         buffered_total_ - shard->last_buffered);
    shard->handler->Flush(&shard->intercept);
    FinishShardOp(shard);
  }
  merged_watermark_ = kMaxTimestamp;
  sink->OnWatermark(kMaxTimestamp, last_stream_time_);
}

void KeyedDisorderHandler::RaiseShardWatermark(Shard* shard) {
  WmHeapSiftDown(shard->heap_pos);
}

void KeyedDisorderHandler::WmHeapSiftUp(size_t pos) {
  const uint32_t idx = wm_heap_[pos];
  const TimestampUs w = shards_[idx]->watermark;
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (shards_[wm_heap_[parent]]->watermark <= w) break;
    wm_heap_[pos] = wm_heap_[parent];
    shards_[wm_heap_[pos]]->heap_pos = pos;
    pos = parent;
  }
  wm_heap_[pos] = idx;
  shards_[idx]->heap_pos = pos;
}

void KeyedDisorderHandler::WmHeapSiftDown(size_t pos) {
  const size_t n = wm_heap_.size();
  const uint32_t idx = wm_heap_[pos];
  const TimestampUs w = shards_[idx]->watermark;
  while (true) {
    const size_t left = 2 * pos + 1;
    const size_t right = left + 1;
    size_t smallest = pos;
    TimestampUs sw = w;
    if (left < n && shards_[wm_heap_[left]]->watermark < sw) {
      smallest = left;
      sw = shards_[wm_heap_[left]]->watermark;
    }
    if (right < n && shards_[wm_heap_[right]]->watermark < sw) {
      smallest = right;
    }
    if (smallest == pos) break;
    wm_heap_[pos] = wm_heap_[smallest];
    shards_[wm_heap_[pos]]->heap_pos = pos;
    pos = smallest;
  }
  wm_heap_[pos] = idx;
  shards_[idx]->heap_pos = pos;
}

void KeyedDisorderHandler::EmitMergedIfAdvanced(TimestampUs stream_time,
                                                EventSink* sink) {
  const TimestampUs merged = shards_[wm_heap_.front()]->watermark;
  if (merged != kMinTimestamp &&
      (merged_watermark_ == kMinTimestamp || merged > merged_watermark_)) {
    merged_watermark_ = merged;
    sink->OnWatermark(merged_watermark_, stream_time);
  }
}

DurationUs KeyedDisorderHandler::current_slack() const {
  if (shards_.empty()) return 0;
  return static_cast<DurationUs>(static_cast<double>(slack_sum_) /
                                 static_cast<double>(shards_.size()));
}

size_t KeyedDisorderHandler::buffered() const { return buffered_total_; }

void KeyedDisorderHandler::set_observer(PipelineObserver* observer) {
  shard_observer_ = observer;
  for (const auto& shard : shards_) {
    shard->handler->set_observer(observer);
  }
}

void KeyedDisorderHandler::set_buffer_engine(ReorderBuffer::Engine engine) {
  has_buffer_engine_ = true;
  buffer_engine_ = engine;
  for (const auto& shard : shards_) {
    shard->handler->set_buffer_engine(engine);
  }
}

void KeyedDisorderHandler::set_buffer_arena(EventArena* arena) {
  buffer_arena_ = arena;
  for (const auto& shard : shards_) {
    shard->handler->set_buffer_arena(arena);
  }
}

void KeyedDisorderHandler::set_buffer_cap(size_t max_buffered_events,
                                          ShedPolicy policy) {
  // Deliberately NOT propagated to the shards: the cap is one global
  // budget, enforced here, not a per-key allowance.
  max_buffered_events_ = max_buffered_events;
  shed_policy_ = policy;
}

void KeyedDisorderHandler::set_max_slack(DurationUs max_slack) {
  max_slack_ = max_slack < 0 ? 0 : max_slack;
  for (const auto& shard : shards_) {
    shard->handler->set_max_slack(max_slack_);
  }
}

const DisorderHandler* KeyedDisorderHandler::shard(int64_t key) const {
  const Shard* s = FindShard(key);
  return s == nullptr ? nullptr : s->handler.get();
}

}  // namespace streamq
