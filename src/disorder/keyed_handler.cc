#include "disorder/keyed_handler.h"

#include <algorithm>

#include "common/logging.h"

namespace streamq {

/// One key's inner handler plus the sink adapter that captures its
/// watermarks (which must not reach downstream directly: only the merged
/// minimum may).
struct KeyedDisorderHandler::Shard {
  class Intercept : public EventSink {
   public:
    Intercept(KeyedDisorderHandler* outer, Shard* shard)
        : outer_(outer), shard_(shard) {}

    void OnEvent(const Event& e) override {
      outer_->RecordRelease(e, now_);
      out_->OnEvent(e);
    }
    void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
      if (watermark > shard_->watermark) {
        shard_->watermark = watermark;
        out_->OnKeyedWatermark(shard_->key, watermark, stream_time);
      }
    }
    void OnLateEvent(const Event& e) override {
      ++outer_->stats_.events_late;
      out_->OnLateEvent(e);
    }

    /// Per-call context: the downstream sink and the stream time at which
    /// releases happen.
    void Arm(EventSink* out, TimestampUs now) {
      out_ = out;
      now_ = now;
    }

   private:
    KeyedDisorderHandler* outer_;
    Shard* shard_;
    EventSink* out_ = nullptr;
    TimestampUs now_ = 0;
  };

  Shard(KeyedDisorderHandler* outer, int64_t shard_key)
      : key(shard_key), intercept(outer, this) {}

  int64_t key;
  std::unique_ptr<DisorderHandler> handler;
  TimestampUs watermark = kMinTimestamp;
  Intercept intercept;
};

KeyedDisorderHandler::KeyedDisorderHandler(HandlerFactory factory)
    : factory_(std::move(factory)) {
  STREAMQ_CHECK(factory_ != nullptr);
}

KeyedDisorderHandler::~KeyedDisorderHandler() = default;

void KeyedDisorderHandler::OnEvent(const Event& e, EventSink* sink) {
  ++stats_.events_in;
  last_stream_time_ = std::max(last_stream_time_, e.arrival_time);
  Shard* shard = last_shard_;
  if (shard == nullptr || last_key_ != e.key) {
    auto& slot = shards_[e.key];
    if (!slot) {
      slot = std::make_unique<Shard>(this, e.key);
      slot->handler = factory_();
      STREAMQ_CHECK(slot->handler != nullptr);
      if (shard_observer_ != nullptr) {
        slot->handler->set_observer(shard_observer_);
      }
    }
    shard = slot.get();
    last_key_ = e.key;
    last_shard_ = shard;
  }
  shard->intercept.Arm(sink, e.arrival_time);
  const TimestampUs shard_wm_before = shard->watermark;
  shard->handler->OnEvent(e, &shard->intercept);
  stats_.max_buffer_size =
      std::max(stats_.max_buffer_size,
               stats_.events_in - stats_.events_out - stats_.events_late);
  // The merged minimum can only move when this shard's watermark moved.
  if (shard->watermark != shard_wm_before) {
    MaybeEmitMergedWatermark(e.arrival_time, sink);
  }
}

void KeyedDisorderHandler::OnHeartbeat(TimestampUs event_time_bound,
                                       TimestampUs stream_time,
                                       EventSink* sink) {
  last_stream_time_ = std::max(last_stream_time_, stream_time);
  for (auto& [key, shard] : shards_) {
    shard->intercept.Arm(sink, stream_time);
    shard->handler->OnHeartbeat(event_time_bound, stream_time,
                                &shard->intercept);
  }
  MaybeEmitMergedWatermark(stream_time, sink);
}

void KeyedDisorderHandler::Flush(EventSink* sink) {
  for (auto& [key, shard] : shards_) {
    shard->intercept.Arm(sink, last_stream_time_);
    shard->handler->Flush(&shard->intercept);
  }
  merged_watermark_ = kMaxTimestamp;
  sink->OnWatermark(kMaxTimestamp, last_stream_time_);
}

void KeyedDisorderHandler::MaybeEmitMergedWatermark(TimestampUs stream_time,
                                                    EventSink* sink) {
  if (shards_.empty()) return;
  TimestampUs merged = kMaxTimestamp;
  for (const auto& [key, shard] : shards_) {
    merged = std::min(merged, shard->watermark);
  }
  if (merged != kMinTimestamp &&
      (merged_watermark_ == kMinTimestamp || merged > merged_watermark_)) {
    merged_watermark_ = merged;
    sink->OnWatermark(merged_watermark_, stream_time);
  }
}

DurationUs KeyedDisorderHandler::current_slack() const {
  if (shards_.empty()) return 0;
  double total = 0.0;
  for (const auto& [key, shard] : shards_) {
    total += static_cast<double>(shard->handler->current_slack());
  }
  return static_cast<DurationUs>(total / static_cast<double>(shards_.size()));
}

size_t KeyedDisorderHandler::buffered() const {
  size_t total = 0;
  for (const auto& [key, shard] : shards_) {
    total += shard->handler->buffered();
  }
  return total;
}

void KeyedDisorderHandler::set_observer(PipelineObserver* observer) {
  shard_observer_ = observer;
  for (auto& [key, shard] : shards_) {
    shard->handler->set_observer(observer);
  }
}

const DisorderHandler* KeyedDisorderHandler::shard(int64_t key) const {
  const auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : it->second->handler.get();
}

}  // namespace streamq
