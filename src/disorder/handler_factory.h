#ifndef STREAMQ_DISORDER_HANDLER_FACTORY_H_
#define STREAMQ_DISORDER_HANDLER_FACTORY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "disorder/aq_kslack.h"
#include "disorder/disorder_handler.h"
#include "disorder/fixed_kslack.h"
#include "disorder/keyed_handler.h"
#include "disorder/lb_kslack.h"
#include "disorder/mp_kslack.h"
#include "disorder/pass_through.h"
#include "disorder/speculative.h"
#include "disorder/watermark_reorderer.h"

namespace streamq {

/// Tagged-union configuration for any disorder handler; lets query specs,
/// examples and experiment harnesses choose handlers by name.
struct DisorderHandlerSpec {
  enum class Kind {
    kPassThrough,
    kFixedKSlack,
    kMpKSlack,
    kAqKSlack,
    kLbKSlack,
    kWatermark,
    kSpeculative,
  };

  Kind kind = Kind::kAqKSlack;
  DurationUs fixed_k = 0;               // kFixedKSlack
  MpKSlack::Options mp;                 // kMpKSlack
  AqKSlack::Options aq;                 // kAqKSlack
  LbKSlack::Options lb;                 // kLbKSlack
  WatermarkReorderer::Options wm;       // kWatermark
  SpeculativeHandler::Options speculative;  // kSpeculative
  /// Optional quality-model exponent for AqKSlack/SpeculativeHandler;
  /// <= 0 means coverage model.
  double aq_quality_gamma = 0.0;

  /// If true, the configured handler runs *per key* (one instance per key,
  /// merged minimum watermark) via KeyedDisorderHandler. Right choice when
  /// keys have heterogeneous delay distributions. Ignored for kPassThrough.
  bool per_key = false;

  /// Master switch for per-release latency sampling. ANDed with the
  /// handler-specific Options flag, so setting this false disables the
  /// sample vector for every kind — throughput benches use it to keep the
  /// hot path free of sample bookkeeping.
  bool collect_latency_samples = true;

  /// ReorderBuffer engine for every buffering handler built from this spec
  /// (per-key specs propagate it to all shards). The bucket ring is the
  /// default; kHeap is the reference engine for equivalence checks.
  ReorderBuffer::Engine buffer_engine = ReorderBuffer::Engine::kRing;

  /// Hard cap on buffered tuples (0 = unbounded). Applied to the top-level
  /// handler only: for a per-key spec the keyed wrapper enforces it as one
  /// global budget across all keys (shards stay uncapped).
  size_t max_buffered_events = 0;

  /// What to shed when an arrival finds the buffer at the cap.
  ShedPolicy shed_policy = ShedPolicy::kEmitEarly;

  /// Clamp on the slack K adaptive handlers may request (0 = unbounded).
  /// Propagated to every layer, shards included.
  DurationUs max_slack = 0;

  /// Attach GlobalEventArena() to every buffering layer built from this
  /// spec: reorder-buffer bucket storage is pooled and recycled across
  /// shard churn instead of allocated per bucket. Pure allocation-path
  /// switch — released sequences are identical either way.
  bool use_arena = false;

  /// Named constructors — the supported way to build a spec. Each sets
  /// exactly the fields its kind reads; combine with the chainable
  /// modifiers below instead of assigning fields directly.
  static DisorderHandlerSpec PassThrough();
  static DisorderHandlerSpec Fixed(DurationUs k);
  static DisorderHandlerSpec Mp(const MpKSlack::Options& options);
  static DisorderHandlerSpec Aq(const AqKSlack::Options& options,
                                double quality_gamma = 0.0);
  static DisorderHandlerSpec Lb(const LbKSlack::Options& options);
  static DisorderHandlerSpec Watermark(
      const WatermarkReorderer::Options& options);
  /// Speculative emit-then-amend: no reorder buffer; the output watermark
  /// trails the frontier by an adaptive hold driven by the amend-rate
  /// controller. Requires an amend-capable window engine downstream.
  static DisorderHandlerSpec Speculative(
      const SpeculativeHandler::Options& options,
      double quality_gamma = 0.0);

  /// Chainable modifiers: return an adjusted copy, so specs compose in one
  /// expression, e.g. DisorderHandlerSpec::Fixed(Seconds(1)).PerKey().
  DisorderHandlerSpec PerKey(bool enabled = true) const;
  DisorderHandlerSpec WithLatencySamples(bool enabled) const;
  DisorderHandlerSpec WithBufferEngine(ReorderBuffer::Engine engine) const;
  /// Bounded-memory degradation: cap the buffer at `max_buffered_events`
  /// tuples, shedding per `policy` (0 removes the cap).
  DisorderHandlerSpec WithBufferCap(
      size_t max_buffered_events,
      ShedPolicy policy = ShedPolicy::kEmitEarly) const;
  /// Clamp adaptive K at `max_slack` microseconds (0 removes the clamp).
  DisorderHandlerSpec WithMaxSlack(DurationUs max_slack) const;
  /// Pool reorder-buffer storage in the process-wide event arena.
  DisorderHandlerSpec WithArena(bool enabled = true) const;

  /// Checks every field the configured kind reads (slack signs, quantile
  /// bounds, controller gains, gamma). MakeDisorderHandler calls this, so a
  /// spec that passes Validate() is guaranteed to construct.
  Status Validate() const;

  /// Human-readable name of the configured handler.
  std::string Describe() const;
};

/// Validates `spec` and instantiates the configured handler into `*out`.
/// On error `*out` is left null and the Status explains which field was
/// rejected.
Status MakeDisorderHandler(const DisorderHandlerSpec& spec,
                           std::unique_ptr<DisorderHandler>* out);

/// Convenience wrapper for callers whose spec is known-good (tests,
/// benches, already-validated queries): aborts on invalid specs.
std::unique_ptr<DisorderHandler> MakeDisorderHandlerOrDie(
    const DisorderHandlerSpec& spec);

}  // namespace streamq

#endif  // STREAMQ_DISORDER_HANDLER_FACTORY_H_
