#ifndef STREAMQ_DISORDER_PASS_THROUGH_H_
#define STREAMQ_DISORDER_PASS_THROUGH_H_

#include "disorder/disorder_handler.h"

namespace streamq {

/// No disorder handling: forwards every tuple immediately; the watermark is
/// the event-time frontier. Tuples behind the frontier are delivered via
/// OnLateEvent (they can never be re-ordered, by definition).
///
/// This is both the "no handling" baseline and the substrate of the
/// speculative strategy: pair it with a window operator configured for
/// speculative emission (emit early, amend on late arrivals).
class PassThrough : public DisorderHandler {
 public:
  explicit PassThrough(bool collect_latency_samples = true)
      : DisorderHandler(collect_latency_samples) {}

  std::string_view name() const override { return "pass-through"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time,
                   EventSink* sink) override;
  void Flush(EventSink* sink) override;

 private:
  TimestampUs frontier_ = kMinTimestamp;
  TimestampUs last_arrival_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_PASS_THROUGH_H_
