#ifndef STREAMQ_DISORDER_QUALITY_MODEL_H_
#define STREAMQ_DISORDER_QUALITY_MODEL_H_

#include <algorithm>
#include <memory>
#include <string_view>

namespace streamq {

/// Maps between *tuple coverage* (the fraction of a window's tuples that
/// make it into the buffer before the window is released) and *result
/// quality* (1 - normalized error of the produced aggregate).
///
/// The buffer controls coverage directly — `coverage(K) = P(lateness <= K)`
/// — but the user specifies quality of results. Different aggregates
/// translate missing tuples into error differently (a missing tuple changes
/// `sum` proportionally but rarely changes `max`), and the quality model
/// captures that translation so the same buffer logic serves all of them.
class QualityModel {
 public:
  virtual ~QualityModel() = default;

  /// Expected result quality when a fraction `coverage` of tuples is
  /// present. Must be non-decreasing in coverage, with f(1) = 1.
  virtual double QualityFromCoverage(double coverage) const = 0;

  /// Smallest coverage that achieves quality `q` (inverse of the above;
  /// conservative, i.e. rounds up).
  virtual double CoverageForQuality(double q) const = 0;

  virtual std::string_view name() const = 0;
};

/// Identity model: quality *is* coverage. This is the standard
/// "window completeness" quality metric and the default.
class CoverageQualityModel : public QualityModel {
 public:
  double QualityFromCoverage(double coverage) const override {
    return std::clamp(coverage, 0.0, 1.0);
  }
  double CoverageForQuality(double q) const override {
    return std::clamp(q, 0.0, 1.0);
  }
  std::string_view name() const override { return "coverage"; }
};

/// Power-law model: quality = coverage^gamma.
///   gamma < 1 — aggregates robust to missing tuples (max/min/quantiles):
///     high quality already at moderate coverage.
///   gamma = 1 — proportional aggregates (sum/count).
///   gamma > 1 — error-amplifying aggregates (variance-like).
/// quality/value_error_model.h fits gamma empirically per aggregate.
class PowerQualityModel : public QualityModel {
 public:
  explicit PowerQualityModel(double gamma);

  double QualityFromCoverage(double coverage) const override;
  double CoverageForQuality(double q) const override;
  std::string_view name() const override { return "power"; }

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Convenience factories.
std::unique_ptr<QualityModel> MakeCoverageQualityModel();
std::unique_ptr<QualityModel> MakePowerQualityModel(double gamma);

}  // namespace streamq

#endif  // STREAMQ_DISORDER_QUALITY_MODEL_H_
