#ifndef STREAMQ_DISORDER_AQ_KSLACK_H_
#define STREAMQ_DISORDER_AQ_KSLACK_H_

#include <memory>
#include <vector>

#include "common/stats.h"
#include "control/pi_controller.h"
#include "disorder/buffered_handler_base.h"
#include "disorder/quality_model.h"

namespace streamq {

/// Quality-driven adaptive K-slack — the paper's operator.
///
/// The user specifies a *result quality* target `q*` instead of a buffer
/// size. The operator:
///
///  1. maintains a sliding sketch of observed tuple lateness (the delay
///     distribution, which may be non-stationary);
///  2. converts `q*` into a required tuple coverage `c*` via the configured
///     QualityModel (feed-forward inversion), so the buffer bound becomes a
///     *delay quantile*: `K = Quantile_lateness(p)`, `p = c* + trim`;
///  3. measures achieved quality over recently released tuples (late-tuple
///     rate through the quality model) and closes the loop with a PI
///     controller on the quality error, producing the `trim` term. The PI
///     feedback absorbs everything the feed-forward model misses: sketch
///     staleness during bursts, model mismatch, estimation noise.
///
/// Controlling the quantile setpoint `p` rather than `K` directly makes the
/// loop scale-free: when delays double, `Quantile(p)` doubles with them and
/// the controller needs no re-tuning.
class AqKSlack : public BufferedHandlerBase {
 public:
  /// Which lateness estimator backs the quantile lookup. The sliding
  /// window is the default (follows non-stationary delays); the global
  /// reservoir is an ablation baseline — a uniform sample over all history
  /// that goes stale after a distribution shift.
  enum class Estimator { kSlidingWindow, kGlobalReservoir };

  struct Options {
    /// Target result quality in (0, 1].
    double target_quality = 0.95;

    /// Lateness estimator backing Quantile()/Cdf() (see Estimator).
    Estimator estimator = Estimator::kSlidingWindow;

    /// Lateness sketch window (tuples). Larger = smoother estimate, slower
    /// reaction to distribution shifts. Also the reservoir capacity for
    /// kGlobalReservoir.
    size_t sketch_window = 4096;

    /// Re-evaluate the buffer bound every this many tuples.
    int64_t adaptation_interval = 256;

    /// PI gains on quality error (in quantile-setpoint units).
    double kp = 0.8;
    double ki = 0.25;

    /// Trim range: the feedback may move the setpoint at most this far from
    /// the feed-forward coverage requirement.
    double trim_limit = 0.25;

    /// Setpoint clamp. The upper bound < 1 keeps K finite under heavy tails:
    /// p -> 1 would chase the sample maximum.
    double p_min = 0.05;
    double p_max = 0.999;

    /// Max setpoint change per adaptation step (slew limiting).
    double max_step = 0.05;

    /// Half-life of the measured-quality EWMA, in adaptation intervals.
    double quality_smoothing_alpha = 0.3;

    bool collect_latency_samples = true;
  };

  /// `quality_model` translates coverage to result quality for the
  /// downstream aggregate (defaults to the identity/coverage model).
  explicit AqKSlack(const Options& options,
                    std::unique_ptr<QualityModel> quality_model = nullptr);

  std::string_view name() const override { return "aq-kslack"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnBatch(std::span<const Event> batch, EventSink* sink) override;
  void Flush(EventSink* sink) override;

  DurationUs current_slack() const override { return k_; }

  /// Current quantile setpoint p (instrumentation).
  double setpoint() const { return p_; }

  /// Smoothed measured quality (instrumentation; 1.0 before first sample).
  double measured_quality() const { return measured_quality_; }

  /// One row per adaptation step, for the adaptation-trace experiments.
  struct AdaptationRecord {
    int64_t tuple_index;
    TimestampUs stream_time;
    double measured_quality;
    double setpoint;
    DurationUs k;
    size_t buffer_size;
  };
  const std::vector<AdaptationRecord>& adaptation_trace() const {
    return adaptation_trace_;
  }

  /// Enables recording of the adaptation trace (off by default to keep
  /// production runs allocation-light).
  void set_record_adaptation_trace(bool on) { record_trace_ = on; }

  const Options& options() const { return options_; }
  const QualityModel& quality_model() const { return *quality_model_; }

 private:
  /// One control step: update measured quality, run the PI loop, recompute K.
  void Adapt(TimestampUs now);

  /// Records one lateness observation into the configured estimator.
  void ObserveLateness(double lateness);

  /// Lateness quantile from the configured estimator.
  double LatenessQuantile(double p) const;

  Options options_;
  std::unique_ptr<QualityModel> quality_model_;
  SlidingWindowQuantile lateness_sketch_;
  ReservoirSample lateness_reservoir_;
  PiController pi_;

  DurationUs k_ = 0;
  double p_;                       // Current quantile setpoint.
  double measured_quality_ = 1.0;  // EWMA of per-interval quality.
  bool have_measurement_ = false;

  // Per-interval counters.
  int64_t interval_events_ = 0;
  int64_t interval_late_ = 0;
  int64_t tuple_index_ = 0;

  bool record_trace_ = false;
  std::vector<AdaptationRecord> adaptation_trace_;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_AQ_KSLACK_H_
