#ifndef STREAMQ_DISORDER_MP_KSLACK_H_
#define STREAMQ_DISORDER_MP_KSLACK_H_

#include <deque>
#include <utility>

#include "disorder/buffered_handler_base.h"

namespace streamq {

/// Disorder-bound-tracking adaptive K-slack: the slack follows the observed
/// maximum tuple lateness, so the buffer is (approximately) always large
/// enough for every tuple — maximal quality, uncontrolled latency. This is
/// the standard adaptive baseline the quality-driven operator is compared
/// against: it cannot trade quality for latency, so on heavy-tailed delays
/// its buffering latency balloons.
class MpKSlack : public BufferedHandlerBase {
 public:
  enum class Mode {
    /// K = max lateness ever observed (monotonically growing bound — the
    /// original published heuristic).
    kGrowOnly,
    /// K = max lateness over the last `window_size` tuples (can shrink when
    /// a disorder burst passes).
    kSlidingMax,
  };

  struct Options {
    Mode mode = Mode::kSlidingMax;
    /// History length in tuples for kSlidingMax.
    int64_t window_size = 10000;
    /// Multiplier applied to the tracked bound (>= 0). 1.0 = exact bound.
    double safety_factor = 1.0;
    bool collect_latency_samples = true;
  };

  explicit MpKSlack(const Options& options);

  std::string_view name() const override { return "mp-kslack"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnBatch(std::span<const Event> batch, EventSink* sink) override;
  void Flush(EventSink* sink) override;

  DurationUs current_slack() const override { return k_; }

 private:
  /// Feeds one lateness observation into the sliding-max structure.
  void ObserveLateness(DurationUs lateness);

  Options options_;
  DurationUs k_ = 0;
  int64_t tuple_index_ = 0;
  /// Monotonic deque of (tuple_index, lateness); front holds the max of the
  /// current window. O(1) amortized per tuple.
  std::deque<std::pair<int64_t, DurationUs>> max_deque_;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_MP_KSLACK_H_
