#include "disorder/disorder_handler.h"

#include <algorithm>
#include <cstdio>

#include "core/pipeline_observer.h"

namespace streamq {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kEmitEarly:
      return "emit-early";
    case ShedPolicy::kDropNewest:
      return "drop-newest";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
  }
  return "?";
}

std::string DisorderHandlerStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "HandlerStats{in=%lld out=%lld late=%lld shed=%lld "
                "forced=%lld max_buf=%lld lat_mean=%s lat_max=%s}",
                static_cast<long long>(events_in),
                static_cast<long long>(events_out),
                static_cast<long long>(events_late),
                static_cast<long long>(events_shed),
                static_cast<long long>(events_force_released),
                static_cast<long long>(max_buffer_size),
                FormatDuration(static_cast<DurationUs>(
                                   buffering_latency_us.mean()))
                    .c_str(),
                FormatDuration(static_cast<DurationUs>(
                                   buffering_latency_us.max()))
                    .c_str());
  return buf;
}

void DisorderHandler::RecordRelease(const Event& released, TimestampUs now) {
  ++stats_.events_out;
  const auto latency =
      static_cast<double>(std::max<TimestampUs>(0, now - released.arrival_time));
  stats_.buffering_latency_us.Add(latency);
  if (collect_latency_samples_) {
    AddLatencySample(latency);
  }
  if (observer_ != nullptr) observer_->OnBufferingLatency(latency);
}

void DisorderHandler::AddLatencySample(double latency) {
  ++latency_samples_seen_;
  std::vector<double>& samples = stats_.latency_samples;
  if (samples.size() < latency_sample_cap_) {
    samples.push_back(latency);
    return;
  }
  const int64_t j = sample_rng_.NextInt(0, latency_samples_seen_ - 1);
  if (j < static_cast<int64_t>(latency_sample_cap_)) {
    samples[static_cast<size_t>(j)] = latency;
  }
}

}  // namespace streamq
