#include "disorder/pass_through.h"

#include <algorithm>

#include "core/pipeline_observer.h"

namespace streamq {

void PassThrough::OnEvent(const Event& e, EventSink* sink) {
  ++stats_.events_in;
  if (frontier_ != kMinTimestamp && e.event_time < frontier_) {
    ++stats_.events_late;
    if (observer_ != nullptr) observer_->OnLateEvent(e);
    sink->OnLateEvent(e);
    return;
  }
  frontier_ = e.event_time;
  last_arrival_ = e.arrival_time;
  RecordRelease(e, e.arrival_time);  // Zero buffering latency by definition.
  sink->OnEvent(e);
  sink->OnWatermark(frontier_, e.arrival_time);
}

void PassThrough::OnHeartbeat(TimestampUs event_time_bound,
                              TimestampUs stream_time, EventSink* sink) {
  last_arrival_ = std::max(last_arrival_, stream_time);
  if (frontier_ == kMinTimestamp || event_time_bound > frontier_) {
    frontier_ = event_time_bound;
    sink->OnWatermark(frontier_, stream_time);
  }
}

void PassThrough::Flush(EventSink* sink) {
  sink->OnWatermark(kMaxTimestamp, last_arrival_);
}

}  // namespace streamq
