#include "disorder/quality_model.h"

#include <cmath>

#include "common/logging.h"

namespace streamq {

PowerQualityModel::PowerQualityModel(double gamma) : gamma_(gamma) {
  STREAMQ_CHECK_GT(gamma, 0.0);
}

double PowerQualityModel::QualityFromCoverage(double coverage) const {
  coverage = std::clamp(coverage, 0.0, 1.0);
  return std::pow(coverage, gamma_);
}

double PowerQualityModel::CoverageForQuality(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  return std::pow(q, 1.0 / gamma_);
}

std::unique_ptr<QualityModel> MakeCoverageQualityModel() {
  return std::make_unique<CoverageQualityModel>();
}

std::unique_ptr<QualityModel> MakePowerQualityModel(double gamma) {
  return std::make_unique<PowerQualityModel>(gamma);
}

}  // namespace streamq
