#ifndef STREAMQ_DISORDER_SPECULATIVE_H_
#define STREAMQ_DISORDER_SPECULATIVE_H_

#include <memory>

#include "common/stats.h"
#include "control/pi_controller.h"
#include "disorder/disorder_handler.h"
#include "disorder/quality_model.h"

namespace streamq {

/// Speculative emit-then-amend execution: the buffer-free alternative to
/// K-slack reordering, for pipelines whose window engine can absorb
/// out-of-order tuples directly (WindowedAggregation Engine::kAmend).
///
/// Every arrival is forwarded downstream *immediately* — no reorder-buffer
/// transit, so forwarding latency is zero by construction. Disorder is
/// managed on the *watermark* instead: the output watermark trails the
/// event-time frontier by an adaptive hold slack K, so windows fire
/// provisionally K behind the frontier and stragglers that land inside the
/// hold band simply fold into not-yet-final state. Only tuples behind the
/// held watermark become amendments (revision emissions) downstream.
///
/// The control loop is the paper's AQ loop re-targeted from buffer slack to
/// amend rate:
///
///  1. sketch observed lateness against the frontier (sliding window);
///  2. feed-forward: target quality q* -> required coverage c* via the
///     QualityModel — here coverage is the fraction of tuples that beat the
///     held watermark, i.e. 1 - amend-rate;
///  3. feedback: measure the interval amend-rate, convert to quality, and
///     trim the quantile setpoint with a PI controller on the quality
///     error. K = Quantile_lateness(p) as in AqKSlack.
///
/// Raising q* trades latency for fewer amendments (a longer hold); lowering
/// it buys latency and lets the amend engine repair the difference. With
/// allowed lateness covering the residual stragglers, *final* result
/// quality is 1.0 either way — the quality knob here prices provisional
/// emissions, which is the speculative trade the paper's buffered operator
/// cannot express.
///
/// Accounting matches the non-buffering contract: forwarded tuples are
/// events_out with zero buffering latency; tuples behind the held watermark
/// are events_late (they reach the sink via OnLateEvent and show up
/// downstream as results_amended, not as loss, when lateness allows).
class SpeculativeHandler : public DisorderHandler {
 public:
  struct Options {
    /// Target provisional-result quality in (0, 1]: the fraction of tuples
    /// that should land ahead of the held watermark. 1 - target is the
    /// amend-rate budget.
    double target_quality = 0.95;

    /// Lateness sketch window (tuples).
    size_t sketch_window = 4096;

    /// Re-evaluate the hold slack every this many tuples.
    int64_t adaptation_interval = 256;

    /// PI gains on quality error (quantile-setpoint units).
    double kp = 0.8;
    double ki = 0.25;

    /// Trim range around the feed-forward coverage requirement.
    double trim_limit = 0.25;

    /// Setpoint clamp (upper bound < 1 keeps K finite under heavy tails).
    double p_min = 0.05;
    double p_max = 0.999;

    /// Max setpoint change per adaptation step (slew limiting).
    double max_step = 0.05;

    /// EWMA weight of the per-interval quality measurement.
    double quality_smoothing_alpha = 0.3;

    bool collect_latency_samples = true;
  };

  explicit SpeculativeHandler(const Options& options,
                              std::unique_ptr<QualityModel> quality_model =
                                  nullptr);

  std::string_view name() const override { return "speculative"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time,
                   EventSink* sink) override;
  void Flush(EventSink* sink) override;

  /// The hold slack: how far the output watermark trails the frontier.
  DurationUs current_slack() const override { return k_hold_; }

  void set_max_slack(DurationUs max_slack) override {
    max_slack_ = max_slack;
  }

  /// Current quantile setpoint p (instrumentation).
  double setpoint() const { return p_; }

  /// Smoothed measured quality (1.0 before the first adaptation).
  double measured_quality() const { return measured_quality_; }

  /// Smoothed fraction of tuples landing behind the held watermark — the
  /// measured amendment rate the controller trades against latency.
  double amend_rate() const { return amend_rate_; }

  const Options& options() const { return options_; }

 private:
  /// One control step: measure the interval amend-rate, close the PI loop,
  /// recompute the hold slack.
  void Adapt(TimestampUs now);

  Options options_;
  std::unique_ptr<QualityModel> quality_model_;
  SlidingWindowQuantile lateness_sketch_;
  PiController pi_;

  TimestampUs frontier_ = kMinTimestamp;
  TimestampUs watermark_ = kMinTimestamp;  // frontier_ - k_hold_, monotone.
  TimestampUs last_arrival_ = 0;

  DurationUs k_hold_ = 0;
  DurationUs max_slack_ = 0;  // 0 = unclamped.
  double p_;
  double measured_quality_ = 1.0;
  double amend_rate_ = 0.0;
  bool have_measurement_ = false;

  int64_t interval_events_ = 0;
  int64_t interval_late_ = 0;
  int64_t tuple_index_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_SPECULATIVE_H_
