#include "disorder/reorder_buffer.h"

#include "common/arena.h"
#include "common/logging.h"

namespace streamq {

namespace {

/// Switch from pop-one-at-a-time to partition + sort once a single release
/// has popped this many events (bulk drains: heartbeats, batch boundaries).
constexpr size_t kBulkPopThreshold = 32;

/// Below this release size, skip the reserve entirely and let the output
/// vector's geometric growth absorb the appends; an exact reserve per tiny
/// release would defeat amortization.
constexpr size_t kReserveSkipBound = 32;

/// Bounds for a bucket's first allocation. Growing thousands of tiny
/// bucket vectors through capacities 1-2-4-8... costs a malloc-and-copy
/// every few pushes on deep buffers, so a virgin bucket reserves the
/// buffer's current average population per live bucket (self-scaling:
/// deep buffers open big buckets, shallow ones stay small), clamped to
/// these bounds.
constexpr size_t kBucketMinCapacity = 8;
constexpr size_t kBucketMaxCapacity = 1024;

}  // namespace

void ReorderBuffer::SetEngine(Engine engine) {
  if (engine == engine_) return;
  STREAMQ_CHECK(empty());
  engine_ = engine;
}

void ReorderBuffer::SetArena(EventArena* arena) {
  if (arena == arena_) return;
  STREAMQ_CHECK(empty());
  arena_ = arena;
}

ReorderBuffer::~ReorderBuffer() {
  // Return every owned buffer — the live heap, live buckets, and empty
  // buckets that still hold capacity — so storage survives shard churn.
  if (arena_ == nullptr) return;
  if (heap_.capacity() > 0) arena_->Recycle(std::move(heap_));
  for (RingBucket& b : ring_) {
    if (b.events.capacity() > 0) arena_->Recycle(std::move(b.events));
  }
}

void ReorderBuffer::ReserveHeapStorage() {
  // Arena-attached heaps start from a pooled buffer (often with a previous
  // life's full capacity); the malloc path keeps vector growth as-is.
  if (arena_ != nullptr) heap_ = arena_->AcquireAtLeast(kBucketMaxCapacity);
}

void ReorderBuffer::ReserveBucket(RingBucket* b) {
  if (arena_ != nullptr) {
    b->events = arena_->AcquireAtLeast(RingBucketReserve());
  } else {
    b->events.reserve(RingBucketReserve());
  }
}

void ReorderBuffer::PushBatch(std::span<const Event> events) {
  if (events.empty()) return;
  if (engine_ == Engine::kRing) {
    for (const Event& e : events) RingPush(e);
    return;
  }
  const size_t old_size = heap_.size();
  heap_.insert(heap_.end(), events.begin(), events.end());
  // Per-element sift-up costs O(m log n) worst case but is nearly free for
  // in-order-ish arrivals (new maxima stay at their leaf); a full heapify is
  // O(n) regardless. Prefer heapify only when the batch dominates the
  // existing buffer, where its linear cost is already amortized.
  if (old_size < events.size()) {
    Heapify();
  } else {
    for (size_t i = old_size; i < heap_.size(); ++i) SiftUp(i);
  }
  if (heap_.size() > max_size_) max_size_ = heap_.size();
}

TimestampUs ReorderBuffer::MinEventTime() const {
  STREAMQ_CHECK(!empty());
  if (engine_ == Engine::kHeap) return heap_.front().event_time;
  // The lowest-index live bucket holds the minimum (q is monotone in time).
  const RingBucket& b = RingAt(q_min_);
  if (b.sorted) return b.events[b.head].event_time;
  TimestampUs min_t = b.events[b.head].event_time;
  for (size_t i = b.head + 1; i < b.events.size(); ++i) {
    min_t = std::min(min_t, b.events[i].event_time);
  }
  return min_t;
}

void ReorderBuffer::PopMin(Event* out) {
  STREAMQ_CHECK(!empty());
  if (engine_ == Engine::kRing) {
    RingPopMin(out);
  } else {
    HeapPopMin(out);
  }
}

size_t ReorderBuffer::PopUpTo(TimestampUs threshold, std::vector<Event>* out) {
  return engine_ == Engine::kRing ? RingPopUpTo(threshold, out)
                                  : HeapPopUpTo(threshold, out);
}

size_t ReorderBuffer::DrainInto(std::vector<Event>* out) {
  if (engine_ == Engine::kRing) return RingDrainInto(out);
  const size_t drained = heap_.size();
  if (drained == 0) return 0;
  std::sort(heap_.begin(), heap_.end(), Less);
  out->reserve(out->size() + drained);
  out->insert(out->end(), std::make_move_iterator(heap_.begin()),
              std::make_move_iterator(heap_.end()));
  heap_.clear();
  return drained;
}

void ReorderBuffer::Clear() {
  heap_.clear();
  if (ring_size_ > 0) {
    for (int64_t q = q_min_; q <= q_max_; ++q) RingAt(q).Reset();
    ring_size_ = 0;
  }
  q_min_ = 0;
  q_max_ = -1;
}

// --- Heap engine ---------------------------------------------------------

void ReorderBuffer::HeapPopMin(Event* out) {
  *out = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

size_t ReorderBuffer::HeapPopUpTo(TimestampUs threshold,
                                  std::vector<Event>* out) {
  if (heap_.empty() || heap_.front().event_time > threshold) return 0;
  size_t popped = 0;
  while (!heap_.empty() && heap_.front().event_time <= threshold) {
    if (popped >= kBulkPopThreshold) {
      // Large release: partition the remaining releasable events to the
      // back, sort them into emission order, and re-heapify the keepers.
      // The reserve covers exactly the bulk tail, not the whole buffer.
      auto keep_end = std::partition(
          heap_.begin(), heap_.end(),
          [threshold](const Event& e) { return e.event_time > threshold; });
      std::sort(keep_end, heap_.end(), Less);
      const size_t bulk = static_cast<size_t>(heap_.end() - keep_end);
      out->reserve(out->size() + bulk);
      popped += bulk;
      out->insert(out->end(), std::make_move_iterator(keep_end),
                  std::make_move_iterator(heap_.end()));
      heap_.erase(keep_end, heap_.end());
      Heapify();
      return popped;
    }
    out->emplace_back();
    HeapPopMin(&out->back());
    ++popped;
  }
  return popped;
}

void ReorderBuffer::Heapify() {
  if (heap_.size() < 2) return;
  for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
}

void ReorderBuffer::SiftUp(size_t i) {
  if (i == 0) return;
  size_t parent = (i - 1) / 2;
  if (!Less(heap_[i], heap_[parent])) return;  // Common case: already a leaf.
  Event v = std::move(heap_[i]);
  do {
    heap_[i] = std::move(heap_[parent]);
    i = parent;
    parent = (i - 1) / 2;
  } while (i > 0 && Less(v, heap_[parent]));
  heap_[i] = std::move(v);
}

void ReorderBuffer::SiftDown(size_t i) {
  const size_t n = heap_.size();
  Event v = std::move(heap_[i]);
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    const Event* sv = &v;
    if (left < n && Less(heap_[left], *sv)) {
      smallest = left;
      sv = &heap_[left];
    }
    if (right < n && Less(heap_[right], *sv)) {
      smallest = right;
    }
    if (smallest == i) break;
    heap_[i] = std::move(heap_[smallest]);
    i = smallest;
  }
  heap_[i] = std::move(v);
}

// --- Ring engine ---------------------------------------------------------

namespace {

/// Bucket-granular bounds on the live event-time span: [q_min, q_max]
/// buckets of width 2^shift cover exactly this closed time interval.
inline TimestampUs BucketLow(int64_t q, int shift) {
  return static_cast<TimestampUs>(q) * (TimestampUs{1} << shift);
}
inline TimestampUs BucketHigh(int64_t q, int shift) {
  return BucketLow(q + 1, shift) - 1;
}

}  // namespace

int ReorderBuffer::DesiredShift(TimestampUs lo, TimestampUs hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  int s = 0;
  while (s < kMaxShift &&
         (span >> s) > static_cast<uint64_t>(kTargetLiveBuckets)) {
    ++s;
  }
  return s;
}

void ReorderBuffer::RingPush(Event e) {
  if (ring_.empty()) ring_.resize(kInitialRingCapacity);
  int64_t q = e.event_time >> shift_;
  if (ring_size_ == 0) {
    q_min_ = q_max_ = q;
  } else if (q < q_min_ || q > q_max_) {
    int64_t new_min = std::min(q, q_min_);
    int64_t new_max = std::max(q, q_max_);
    const int64_t new_span = new_max - new_min + 1;
    // Widen when the span blows past the hard cap, or earlier when the
    // buffer is sparse (fewer events than buckets past the target count):
    // crawling a wide front of one-event buckets costs an allocation and a
    // cache miss per push, and rebucketing a sparse buffer is cheap.
    if (new_span > kMaxLiveBuckets ||
        (new_span > kTargetLiveBuckets &&
         ring_size_ < static_cast<size_t>(new_span))) {
      // Span blown (slack grew or an outlier arrived): widen the buckets so
      // the whole live span refits near the target bucket count.
      const TimestampUs lo =
          std::min(e.event_time, BucketLow(q_min_, shift_));
      const TimestampUs hi =
          std::max(e.event_time, BucketHigh(q_max_, shift_));
      RingRebucket(std::max(DesiredShift(lo, hi), shift_ + 1));
      q = e.event_time >> shift_;
      new_min = std::min(q, q_min_);
      new_max = std::max(q, q_max_);
    }
    RingGrowCapacity(static_cast<uint64_t>(new_max - new_min + 1));
    q_min_ = new_min;
    q_max_ = new_max;
  }
  RingBucket& b = RingAt(q);
  if (b.LiveEmpty()) {
    b.Reset();
    b.sorted = true;
  } else if (b.sorted && Less(e, b.events.back())) {
    b.sorted = false;
  }
  if (b.events.capacity() == 0) ReserveBucket(&b);
  b.events.push_back(std::move(e));
  ++ring_size_;
  if (ring_size_ > max_size_) max_size_ = ring_size_;
  // Narrow when the live span collapsed to a sliver of wide buckets (slack
  // shrank): re-split toward the target count. The bucket-granular span
  // over-estimates the true span, so this only narrows when clearly due --
  // the kMaxLiveBuckets/kNarrowSpanBuckets gap provides the hysteresis.
  if (shift_ > 0 && ring_size_ >= kNarrowMinEvents &&
      q_max_ - q_min_ + 1 <= kNarrowSpanBuckets) {
    const int desired =
        DesiredShift(BucketLow(q_min_, shift_), BucketHigh(q_max_, shift_));
    if (desired < shift_) RingRebucket(desired);
  }
}

void ReorderBuffer::RingPopMin(Event* out) {
  RingBucket& b = RingAt(q_min_);
  EnsureSortedLive(&b);
  *out = std::move(b.events[b.head]);
  ++b.head;
  if (b.LiveEmpty()) b.Reset();
  --ring_size_;
  RingAdvanceMin();
}

size_t ReorderBuffer::RingPopUpTo(TimestampUs threshold,
                                  std::vector<Event>* out) {
  if (ring_size_ == 0) return 0;
  const int64_t qt = threshold >> shift_;
  if (qt < q_min_) return 0;
  // Common per-event case: the threshold lands in the lowest live bucket
  // and nothing there is releasable yet.
  if (qt == q_min_) {
    const RingBucket& b = RingAt(q_min_);
    if (b.sorted && b.events[b.head].event_time > threshold) return 0;
  }
  // Buckets in [q_min_, q_full_end) lie entirely at or below the threshold;
  // bucket qt (if live) straddles it. Their live populations bound the
  // release size for the reserve.
  const int64_t q_full_end = std::min(qt, q_max_ + 1);
  size_t bound = 0;
  for (int64_t q = q_min_; q < q_full_end; ++q) bound += RingAt(q).live();
  if (qt <= q_max_) bound += RingAt(qt).live();
  if (bound == 0) return 0;
  if (bound > kReserveSkipBound) out->reserve(out->size() + bound);

  size_t popped = 0;
  for (int64_t q = q_min_; q < q_full_end; ++q) {
    RingBucket& b = RingAt(q);
    if (b.LiveEmpty()) continue;
    EnsureSortedLive(&b);
    popped += b.live();
    out->insert(out->end(),
                std::make_move_iterator(b.events.begin() +
                                        static_cast<ptrdiff_t>(b.head)),
                std::make_move_iterator(b.events.end()));
    b.Reset();
  }
  if (qt <= q_max_) {
    RingBucket& b = RingAt(qt);
    if (!b.LiveEmpty()) {
      EnsureSortedLive(&b);
      const auto live_begin =
          b.events.begin() + static_cast<ptrdiff_t>(b.head);
      if (live_begin->event_time <= threshold) {
        const auto split = std::upper_bound(
            live_begin, b.events.end(), threshold,
            [](TimestampUs t, const Event& e) { return t < e.event_time; });
        popped += static_cast<size_t>(split - live_begin);
        out->insert(out->end(), std::make_move_iterator(live_begin),
                    std::make_move_iterator(split));
        b.head = static_cast<size_t>(split - b.events.begin());
        if (b.LiveEmpty()) b.Reset();
      }
    }
  }
  ring_size_ -= popped;
  RingAdvanceMin();
  return popped;
}

size_t ReorderBuffer::RingDrainInto(std::vector<Event>* out) {
  const size_t drained = ring_size_;
  if (drained == 0) return 0;
  out->reserve(out->size() + drained);
  for (int64_t q = q_min_; q <= q_max_; ++q) {
    RingBucket& b = RingAt(q);
    if (b.LiveEmpty()) continue;
    EnsureSortedLive(&b);
    out->insert(out->end(),
                std::make_move_iterator(b.events.begin() +
                                        static_cast<ptrdiff_t>(b.head)),
                std::make_move_iterator(b.events.end()));
    b.Reset();
  }
  ring_size_ = 0;
  RingAdvanceMin();
  return drained;
}

void ReorderBuffer::EnsureSortedLive(RingBucket* b) {
  if (b->sorted) return;
  if (b->head > 0) {
    b->events.erase(b->events.begin(),
                    b->events.begin() + static_cast<ptrdiff_t>(b->head));
    b->head = 0;
  }
  std::sort(b->events.begin(), b->events.end(), Less);
  b->sorted = true;
}

void ReorderBuffer::RingGrowCapacity(uint64_t span) {
  if (ring_.empty()) ring_.resize(kInitialRingCapacity);
  if (span <= ring_.size()) return;
  size_t cap = ring_.size();
  while (cap < span) cap *= 2;
  cap *= 2;  // Headroom so a drifting span doesn't regrow immediately.
  std::vector<RingBucket> old = std::move(ring_);
  ring_.assign(cap, RingBucket{});
  if (ring_size_ > 0) {
    const size_t old_mask = old.size() - 1;
    for (int64_t q = q_min_; q <= q_max_; ++q) {
      RingBucket& ob = old[static_cast<size_t>(q) & old_mask];
      if (ob.LiveEmpty()) continue;
      ring_[RingIndex(q)] = std::move(ob);
    }
  }
  if (arena_ != nullptr) {
    // Empty buckets left behind by the remap still hold capacity; pool it
    // for the new ring's virgin buckets instead of freeing.
    for (RingBucket& ob : old) {
      if (ob.events.capacity() > 0) arena_->Recycle(std::move(ob.events));
    }
  }
}

void ReorderBuffer::RingRebucket(int new_shift) {
  std::vector<Event> all;
  all.reserve(ring_size_);
  for (int64_t q = q_min_; q <= q_max_; ++q) {
    RingBucket& b = RingAt(q);
    if (b.LiveEmpty()) continue;
    all.insert(all.end(),
               std::make_move_iterator(b.events.begin() +
                                       static_cast<ptrdiff_t>(b.head)),
               std::make_move_iterator(b.events.end()));
    b.Reset();
  }
  shift_ = new_shift;
  int64_t new_min = all.front().event_time >> shift_;
  int64_t new_max = new_min;
  for (const Event& e : all) {
    const int64_t q = e.event_time >> shift_;
    new_min = std::min(new_min, q);
    new_max = std::max(new_max, q);
  }
  q_min_ = new_min;
  q_max_ = new_max;
  RingGrowCapacity(static_cast<uint64_t>(new_max - new_min + 1));
  for (Event& e : all) {
    RingBucket& b = RingAt(e.event_time >> shift_);
    if (b.events.empty()) {
      b.sorted = true;
    } else if (b.sorted && Less(e, b.events.back())) {
      b.sorted = false;
    }
    if (b.events.capacity() == 0) ReserveBucket(&b);
    b.events.push_back(std::move(e));
  }
}

size_t ReorderBuffer::RingBucketReserve() const {
  const size_t span =
      ring_size_ == 0 ? 1 : static_cast<size_t>(q_max_ - q_min_ + 1);
  return std::clamp(ring_size_ / span + 1, kBucketMinCapacity,
                    kBucketMaxCapacity);
}

void ReorderBuffer::RingAdvanceMin() {
  if (ring_size_ == 0) {
    q_min_ = 0;
    q_max_ = -1;
    return;
  }
  while (RingAt(q_min_).LiveEmpty()) ++q_min_;
}

}  // namespace streamq
