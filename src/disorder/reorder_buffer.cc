#include "disorder/reorder_buffer.h"

#include "common/logging.h"

namespace streamq {

namespace {

/// Switch from pop-one-at-a-time to partition + sort once a single release
/// has popped this many events (bulk drains: heartbeats, batch boundaries).
constexpr size_t kBulkPopThreshold = 32;

}  // namespace

void ReorderBuffer::PushBatch(std::span<const Event> events) {
  if (events.empty()) return;
  const size_t old_size = heap_.size();
  heap_.insert(heap_.end(), events.begin(), events.end());
  // Per-element sift-up costs O(m log n) worst case but is nearly free for
  // in-order-ish arrivals (new maxima stay at their leaf); a full heapify is
  // O(n) regardless. Prefer heapify only when the batch dominates the
  // existing buffer, where its linear cost is already amortized.
  if (old_size < events.size()) {
    Heapify();
  } else {
    for (size_t i = old_size; i < heap_.size(); ++i) SiftUp(i);
  }
  if (heap_.size() > max_size_) max_size_ = heap_.size();
}

TimestampUs ReorderBuffer::MinEventTime() const {
  STREAMQ_CHECK(!heap_.empty());
  return heap_.front().event_time;
}

void ReorderBuffer::PopMin(Event* out) {
  STREAMQ_CHECK(!heap_.empty());
  *out = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

size_t ReorderBuffer::PopUpTo(TimestampUs threshold, std::vector<Event>* out) {
  if (heap_.empty() || heap_.front().event_time > threshold) return 0;
  out->reserve(out->size() + heap_.size());
  size_t popped = 0;
  while (!heap_.empty() && heap_.front().event_time <= threshold) {
    if (popped >= kBulkPopThreshold) {
      // Large release: partition the remaining releasable events to the
      // back, sort them into emission order, and re-heapify the keepers.
      auto keep_end = std::partition(
          heap_.begin(), heap_.end(),
          [threshold](const Event& e) { return e.event_time > threshold; });
      std::sort(keep_end, heap_.end(), Less);
      popped += static_cast<size_t>(heap_.end() - keep_end);
      out->insert(out->end(), std::make_move_iterator(keep_end),
                  std::make_move_iterator(heap_.end()));
      heap_.erase(keep_end, heap_.end());
      Heapify();
      return popped;
    }
    out->emplace_back();
    PopMin(&out->back());
    ++popped;
  }
  return popped;
}

size_t ReorderBuffer::DrainInto(std::vector<Event>* out) {
  const size_t drained = heap_.size();
  if (drained == 0) return 0;
  std::sort(heap_.begin(), heap_.end(), Less);
  out->reserve(out->size() + drained);
  out->insert(out->end(), std::make_move_iterator(heap_.begin()),
              std::make_move_iterator(heap_.end()));
  heap_.clear();
  return drained;
}

void ReorderBuffer::Clear() { heap_.clear(); }

void ReorderBuffer::Heapify() {
  if (heap_.size() < 2) return;
  for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
}

void ReorderBuffer::SiftUp(size_t i) {
  if (i == 0) return;
  size_t parent = (i - 1) / 2;
  if (!Less(heap_[i], heap_[parent])) return;  // Common case: already a leaf.
  Event v = std::move(heap_[i]);
  do {
    heap_[i] = std::move(heap_[parent]);
    i = parent;
    parent = (i - 1) / 2;
  } while (i > 0 && Less(v, heap_[parent]));
  heap_[i] = std::move(v);
}

void ReorderBuffer::SiftDown(size_t i) {
  const size_t n = heap_.size();
  Event v = std::move(heap_[i]);
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    const Event* sv = &v;
    if (left < n && Less(heap_[left], *sv)) {
      smallest = left;
      sv = &heap_[left];
    }
    if (right < n && Less(heap_[right], *sv)) {
      smallest = right;
    }
    if (smallest == i) break;
    heap_[i] = std::move(heap_[smallest]);
    i = smallest;
  }
  heap_[i] = std::move(v);
}

}  // namespace streamq
