#include "disorder/reorder_buffer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace streamq {

void ReorderBuffer::Push(const Event& e) {
  heap_.push_back(e);
  SiftUp(heap_.size() - 1);
  max_size_ = std::max(max_size_, heap_.size());
}

TimestampUs ReorderBuffer::MinEventTime() const {
  STREAMQ_CHECK(!heap_.empty());
  return heap_.front().event_time;
}

void ReorderBuffer::PopMin(Event* out) {
  STREAMQ_CHECK(!heap_.empty());
  *out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

size_t ReorderBuffer::PopUpTo(TimestampUs threshold, std::vector<Event>* out) {
  size_t popped = 0;
  Event e;
  while (!heap_.empty() && heap_.front().event_time <= threshold) {
    PopMin(&e);
    out->push_back(e);
    ++popped;
  }
  return popped;
}

void ReorderBuffer::Clear() { heap_.clear(); }

void ReorderBuffer::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void ReorderBuffer::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < n && Less(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && Less(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace streamq
