#ifndef STREAMQ_DISORDER_DISORDER_HANDLER_H_
#define STREAMQ_DISORDER_DISORDER_HANDLER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"
#include "disorder/event_sink.h"
#include "disorder/reorder_buffer.h"
#include "stream/event.h"

namespace streamq {

class PipelineObserver;

/// What a capped handler does with the excess tuple when an arrival finds
/// the reorder buffer at its `max_buffered_events` bound. Every policy
/// keeps the memory bound hard; they differ in *which* tuple pays and in
/// whether it is still visible downstream.
enum class ShedPolicy : int {
  /// Force-release the oldest buffered tuples now, advancing the output
  /// watermark to the last released event time. Nothing is discarded —
  /// the quality loss is indirect: tuples later than the force-advanced
  /// watermark are diverted late. The default.
  kEmitEarly,
  /// Discard the incoming tuple (counted in events_shed).
  kDropNewest,
  /// Discard the oldest buffered tuple (counted in events_shed). The
  /// watermark does not move, so ordering guarantees are unaffected.
  kDropOldest,
};

/// Short stable name, e.g. "emit-early".
const char* ShedPolicyName(ShedPolicy policy);

/// Instrumentation shared by all disorder handlers.
///
/// Accounting identity (after Flush): events_in == events_out +
/// events_late + events_shed. events_dropped is a subset of events_late;
/// events_force_released is a subset of events_out.
struct DisorderHandlerStats {
  int64_t events_in = 0;
  int64_t events_out = 0;
  /// Tuples that missed the output watermark and were diverted to
  /// OnLateEvent.
  int64_t events_late = 0;
  /// Tuples discarded entirely (beyond a handler's allowed lateness); a
  /// subset of the quality loss that is not even visible downstream.
  int64_t events_dropped = 0;
  /// Tuples discarded by the buffer cap (kDropNewest/kDropOldest): quality
  /// loss the memory bound charged directly.
  int64_t events_shed = 0;
  /// Tuples the cap forced out early (kEmitEarly). They still reached the
  /// sink (and are counted in events_out); the loss shows up as extra
  /// events_late behind the force-advanced watermark.
  int64_t events_force_released = 0;
  /// Largest buffer occupancy observed.
  int64_t max_buffer_size = 0;

  /// Per-tuple buffering latency in microseconds of stream (arrival) time:
  /// the gap between a tuple's arrival and the arrival that triggered its
  /// release. Zero for tuples forwarded immediately.
  RunningMoments buffering_latency_us;

  /// Latency sample (kept when `collect_latency_samples` is on), for
  /// percentile reporting in the evaluation harness. Exact up to the
  /// handler's latency_sample_cap() releases, a deterministic uniform
  /// reservoir beyond it — so memory stays bounded on unbounded streams.
  std::vector<double> latency_samples;

  std::string ToString() const;
};

/// A disorder handler consumes an arrival-ordered stream and produces an
/// event-time-ordered stream plus watermarks (see EventSink contract).
///
/// Handlers are single-threaded and driven purely by arrivals: "now" is the
/// arrival timestamp of the tuple being processed, which makes every run
/// deterministic and lets experiments measure buffering latency exactly.
class DisorderHandler {
 public:
  explicit DisorderHandler(bool collect_latency_samples = true)
      : collect_latency_samples_(collect_latency_samples) {}
  virtual ~DisorderHandler() = default;

  DisorderHandler(const DisorderHandler&) = delete;
  DisorderHandler& operator=(const DisorderHandler&) = delete;

  /// Stable identifier, e.g. "fixed-kslack".
  virtual std::string_view name() const = 0;

  /// Processes one arrival. May call sink->OnEvent / OnWatermark /
  /// OnLateEvent zero or more times.
  virtual void OnEvent(const Event& e, EventSink* sink) = 0;

  /// Processes a chunk of consecutive arrivals. Semantically identical to
  /// calling OnEvent for each element in order — same sink calls, same
  /// stats — but overridable so buffering handlers can amortize per-tuple
  /// dispatch and use bulk buffer operations. Default: per-event loop.
  virtual void OnBatch(std::span<const Event> batch, EventSink* sink) {
    for (const Event& e : batch) OnEvent(e, sink);
  }

  /// Source-issued heartbeat (punctuation): a promise that no future tuple
  /// carries event_time < `event_time_bound`. Lets buffers drain and
  /// windows close during idle periods, when no arrival would otherwise
  /// advance the frontier. `stream_time` is "now" on the arrival clock.
  /// Default: ignored (handlers that do not buffer need no progress).
  virtual void OnHeartbeat(TimestampUs event_time_bound,
                           TimestampUs stream_time, EventSink* sink) {
    (void)event_time_bound;
    (void)stream_time;
    (void)sink;
  }

  /// End of stream: drains any buffered tuples in order and emits a final
  /// watermark of kMaxTimestamp.
  virtual void Flush(EventSink* sink) = 0;

  /// The current slack bound K in event-time microseconds (0 for
  /// non-buffering handlers). Instrumentation only.
  virtual DurationUs current_slack() const { return 0; }

  /// Current buffer occupancy in tuples.
  virtual size_t buffered() const { return 0; }

  /// Selects the ReorderBuffer engine for buffering handlers; composite
  /// handlers propagate the choice to every shard. Only legal before the
  /// first arrival (buffers migrate only while empty). No-op for handlers
  /// that do not buffer.
  virtual void set_buffer_engine(ReorderBuffer::Engine engine) {
    (void)engine;
  }

  /// Attaches a slab arena to the reorder buffer of every buffering
  /// handler (composite handlers propagate to every shard, existing and
  /// future): bucket storage is pooled and recycled across shard churn
  /// instead of hitting the heap. Only legal before the first arrival;
  /// the arena must outlive the handler. No-op for handlers that do not
  /// buffer.
  virtual void set_buffer_arena(EventArena* arena) { (void)arena; }

  /// Hard bound on buffered tuples (0 = unbounded, the default). When an
  /// arrival finds the buffer at the cap, the handler sheds per `policy`
  /// and accounts the loss in events_shed / events_force_released. A keyed
  /// handler treats the cap as a *global* budget across all keys. No-op
  /// for handlers that do not buffer.
  virtual void set_buffer_cap(size_t max_buffered_events, ShedPolicy policy) {
    (void)max_buffered_events;
    (void)policy;
  }

  /// Clamp on the slack K an adaptive handler may request (0 = unbounded,
  /// the default). Bounds the buffer the LB/AQ/MP control loops can ask
  /// for even when their estimators say otherwise. No-op for handlers with
  /// a static bound.
  virtual void set_max_slack(DurationUs max_slack) { (void)max_slack; }

  /// Sheds buffered tuples until occupancy is at most `target`, applying
  /// `policy` (kEmitEarly emits through `sink`; kDropOldest discards;
  /// kDropNewest is an arrival-side policy and sheds nothing here).
  /// Returns the number of tuples removed. Used by composite handlers to
  /// reclaim budget from their fullest shard.
  virtual size_t ShedToOccupancy(size_t target, ShedPolicy policy,
                                 TimestampUs now, EventSink* sink) {
    (void)target;
    (void)policy;
    (void)now;
    (void)sink;
    return 0;
  }

  const DisorderHandlerStats& stats() const { return stats_; }

  /// Maximum number of retained latency samples. Up to the cap the sample
  /// is the complete series (exact percentiles); beyond it, reservoir
  /// sampling keeps a uniform subset with bounded memory. The default cap
  /// covers the evaluation harness's stream lengths, so harness percentiles
  /// stay exact.
  size_t latency_sample_cap() const { return latency_sample_cap_; }
  void set_latency_sample_cap(size_t cap) { latency_sample_cap_ = cap; }

  /// Installs a read-only instrumentation observer (nullptr = none, the
  /// default). When unset, the hot path pays only a pointer null-check —
  /// no virtual calls (the zero-cost-when-off contract of
  /// core/pipeline_observer.h). Virtual so composite handlers
  /// (KeyedDisorderHandler) can propagate to their inner handlers.
  virtual void set_observer(PipelineObserver* observer) {
    observer_ = observer;
  }
  PipelineObserver* observer() const { return observer_; }

  static constexpr size_t kDefaultLatencySampleCap = 1u << 18;

 protected:
  /// Records a released tuple's buffering latency; `now` is the arrival time
  /// of the tuple whose processing triggered the release.
  void RecordRelease(const Event& released, TimestampUs now);

  DisorderHandlerStats stats_;
  bool collect_latency_samples_;
  PipelineObserver* observer_ = nullptr;

 private:
  /// Vitter's algorithm R over the release series (deterministic seed, so
  /// equal runs keep equal samples).
  void AddLatencySample(double latency);

  size_t latency_sample_cap_ = kDefaultLatencySampleCap;
  int64_t latency_samples_seen_ = 0;
  Rng sample_rng_{0x5AE571E5u};
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_DISORDER_HANDLER_H_
