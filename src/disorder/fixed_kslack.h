#ifndef STREAMQ_DISORDER_FIXED_KSLACK_H_
#define STREAMQ_DISORDER_FIXED_KSLACK_H_

#include "disorder/buffered_handler_base.h"

namespace streamq {

/// Classic K-slack (Babu et al.): buffer tuples and release every tuple
/// whose event time is at least `K` behind the event-time frontier.
/// `K` is fixed for the lifetime of the operator — the baseline whose
/// tuning problem motivates the quality-driven operator.
class FixedKSlack : public BufferedHandlerBase {
 public:
  /// `k` is the slack in event-time microseconds (>= 0).
  explicit FixedKSlack(DurationUs k, bool collect_latency_samples = true);

  std::string_view name() const override { return "fixed-kslack"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnBatch(std::span<const Event> batch, EventSink* sink) override;
  void Flush(EventSink* sink) override;

  DurationUs current_slack() const override { return k_; }

 private:
  DurationUs k_;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_FIXED_KSLACK_H_
