#ifndef STREAMQ_DISORDER_LB_KSLACK_H_
#define STREAMQ_DISORDER_LB_KSLACK_H_

#include <vector>

#include "common/stats.h"
#include "control/pi_controller.h"
#include "disorder/buffered_handler_base.h"

namespace streamq {

/// Latency-budget adaptive K-slack — the dual of AqKSlack.
///
/// The user specifies a *mean buffering latency budget* instead of a
/// quality target; the operator maximizes delivered quality subject to it.
/// Same machinery as AqKSlack (lateness sketch, quantile setpoint, PI
/// feedback), different measured variable: the loop compares the budget to
/// the mean buffering latency of recently released tuples and steers the
/// quantile setpoint p (and thus K) to consume exactly the budget.
///
/// Together the two operators cover both directions of the quality/latency
/// contract: "at least this good, as fast as possible" (AqKSlack) and
/// "at most this slow, as good as possible" (LbKSlack).
class LbKSlack : public BufferedHandlerBase {
 public:
  struct Options {
    /// Target mean buffering latency (microseconds of stream time).
    DurationUs latency_budget = Millis(20);

    size_t sketch_window = 4096;
    int64_t adaptation_interval = 256;

    /// PI gains on the normalized latency error (budget-relative).
    double kp = 0.3;
    double ki = 0.1;

    double p_min = 0.0;
    double p_max = 0.999;
    double max_step = 0.05;

    bool collect_latency_samples = true;
  };

  explicit LbKSlack(const Options& options);

  std::string_view name() const override { return "lb-kslack"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnBatch(std::span<const Event> batch, EventSink* sink) override;
  void Flush(EventSink* sink) override;

  DurationUs current_slack() const override { return k_; }

  /// Current quantile setpoint (instrumentation).
  double setpoint() const { return p_; }

  /// Mean buffering latency over the last completed adaptation interval.
  double last_interval_latency() const { return last_interval_latency_; }

  const Options& options() const { return options_; }

 private:
  void Adapt();

  Options options_;
  SlidingWindowQuantile lateness_sketch_;
  PiController pi_;

  DurationUs k_ = 0;
  double p_ = 0.5;
  double last_interval_latency_ = 0.0;

  int64_t interval_events_ = 0;
  // Snapshot of cumulative release stats at the last adaptation, to derive
  // per-interval means.
  double prev_latency_sum_ = 0.0;
  int64_t prev_release_count_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_LB_KSLACK_H_
