#ifndef STREAMQ_DISORDER_EVENT_SINK_H_
#define STREAMQ_DISORDER_EVENT_SINK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.h"
#include "stream/event.h"

namespace streamq {

/// Consumer of a disorder handler's output.
///
/// Contract: between two OnWatermark(w1), OnWatermark(w2) calls (w2 >= w1),
/// every OnEvent carries event_time >= w1, and OnEvent calls are in
/// non-decreasing event-time order. Events that violate the watermark (i.e.
/// arrived after their slot was already released) are delivered through
/// OnLateEvent instead, so downstream can decide to drop or amend.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// An in-order event, ready for processing.
  virtual void OnEvent(const Event& e) = 0;

  /// A run of in-order events, ready for processing. Semantically identical
  /// to calling OnEvent for each element in order; handlers use it to hand
  /// a whole release over in one virtual call, and batch-aware sinks
  /// override it to amortize per-tuple costs. Default: per-event loop.
  virtual void OnEvents(std::span<const Event> events) {
    for (const Event& e : events) OnEvent(e);
  }

  /// Same as OnEvents(events), but also carries `stream_time` — the arrival
  /// timestamp ("now") of the tuple or heartbeat whose processing produced
  /// this release. Composite sinks (keyed shard interceptors) override this
  /// overload to account per-release latency against the triggering
  /// arrival; ordinary consumers only need the 1-arg form. Default:
  /// forwards to OnEvents(events).
  virtual void OnEvents(std::span<const Event> events,
                        TimestampUs stream_time) {
    (void)stream_time;
    OnEvents(events);
  }

  /// The output watermark advanced: no future OnEvent will carry
  /// event_time < `watermark`. `stream_time` is the arrival timestamp of the
  /// tuple whose processing produced this watermark — i.e. "now" on the
  /// stream clock — which downstream operators use to timestamp emissions.
  virtual void OnWatermark(TimestampUs watermark, TimestampUs stream_time) = 0;

  /// A tuple that missed the watermark. Default: ignore (drop).
  virtual void OnLateEvent(const Event& e) { (void)e; }

  /// Per-key watermark from a keyed disorder handler: no future OnEvent
  /// *of this key* will carry event_time < `watermark`. Keyed handlers
  /// emit these alongside the merged-minimum OnWatermark; with them, an
  /// OnEvent may be behind the merged watermark but never behind its own
  /// key's keyed watermark. Default: ignored (global consumers only need
  /// OnWatermark).
  virtual void OnKeyedWatermark(int64_t key, TimestampUs watermark,
                                TimestampUs stream_time) {
    (void)key;
    (void)watermark;
    (void)stream_time;
  }
};

/// Test/harness sink that records everything it receives.
class CollectingSink : public EventSink {
 public:
  void OnEvent(const Event& e) override { events.push_back(e); }
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
    watermarks.push_back(watermark);
    watermark_stream_times.push_back(stream_time);
  }
  void OnLateEvent(const Event& e) override { late_events.push_back(e); }

  void Clear() {
    events.clear();
    watermarks.clear();
    watermark_stream_times.clear();
    late_events.clear();
  }

  std::vector<Event> events;
  std::vector<TimestampUs> watermarks;
  std::vector<TimestampUs> watermark_stream_times;
  std::vector<Event> late_events;
};

/// Sink that only counts (for throughput benchmarks; avoids allocation).
class CountingSink : public EventSink {
 public:
  void OnEvent(const Event& e) override {
    ++num_events;
    checksum += e.value;
  }
  void OnWatermark(TimestampUs watermark, TimestampUs) override {
    ++num_watermarks;
    last_watermark = watermark;
  }
  void OnLateEvent(const Event&) override { ++num_late; }

  int64_t num_events = 0;
  int64_t num_watermarks = 0;
  int64_t num_late = 0;
  TimestampUs last_watermark = kMinTimestamp;
  double checksum = 0.0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_EVENT_SINK_H_
