#ifndef STREAMQ_DISORDER_BUFFERED_HANDLER_BASE_H_
#define STREAMQ_DISORDER_BUFFERED_HANDLER_BASE_H_

#include <algorithm>
#include <span>
#include <vector>

#include "core/pipeline_observer.h"
#include "disorder/disorder_handler.h"
#include "disorder/reorder_buffer.h"

namespace streamq {

/// Shared machinery for every buffering handler: the reorder buffer, the
/// event-time frontier `t_max`, the output watermark, and the release
/// procedure. Subclasses only decide *when* and *up to where* to release.
///
/// The hot-path members (Ingest, ReleaseUpTo, ProcessBatch) are defined
/// inline so a subclass's OnBatch compiles into one tight loop with no
/// per-tuple virtual dispatch: the only virtual calls left are the sink
/// notifications, and releases go out through a single OnEvents call per
/// release instead of one OnEvent per tuple.
class BufferedHandlerBase : public DisorderHandler {
 public:
  explicit BufferedHandlerBase(bool collect_latency_samples = true)
      : DisorderHandler(collect_latency_samples) {}

  size_t buffered() const override { return buffer_.size(); }

  void set_buffer_engine(ReorderBuffer::Engine engine) override {
    buffer_.SetEngine(engine);
  }

  void set_buffer_arena(EventArena* arena) override {
    buffer_.SetArena(arena);
  }

  void set_buffer_cap(size_t max_buffered_events, ShedPolicy policy) override {
    max_buffered_events_ = max_buffered_events;
    shed_policy_ = policy;
  }

  void set_max_slack(DurationUs max_slack) override {
    max_slack_ = max_slack < 0 ? 0 : max_slack;
  }

  /// Sheds down to `target` occupancy (see DisorderHandler). Out-of-line:
  /// this only runs when the cap is hit, never on the uncapped hot path.
  size_t ShedToOccupancy(size_t target, ShedPolicy policy, TimestampUs now,
                         EventSink* sink) override;

  /// Advances the frontier to the promised bound and releases with the
  /// handler's current slack. Works for every buffered handler because the
  /// release bound is current_slack(), which subclasses keep up to date.
  void OnHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time,
                   EventSink* sink) override;

  /// Event-time frontier: max event time seen so far.
  TimestampUs frontier() const { return t_max_; }

  /// Current output watermark (last emitted).
  TimestampUs watermark() const { return emitted_frontier_; }

 protected:
  /// Inserts `e` into the buffer unless it is already behind the output
  /// watermark, in which case it is diverted to OnLateEvent. Updates t_max
  /// and stats. Returns true if the event was buffered.
  bool Ingest(const Event& e, EventSink* sink) {
    ++stats_.events_in;
    last_activity_ = std::max(last_activity_, e.arrival_time);
    t_max_ = (t_max_ == kMinTimestamp) ? e.event_time
                                       : std::max(t_max_, e.event_time);
    if (max_buffered_events_ != 0 &&
        buffer_.size() >= max_buffered_events_) [[unlikely]] {
      if (!MakeRoomForIngest(e, sink)) return false;
    }
    if (emitted_frontier_ != kMinTimestamp &&
        e.event_time < emitted_frontier_) {
      ++stats_.events_late;
      if (observer_ != nullptr) observer_->OnLateEvent(e);
      sink->OnLateEvent(e);
      return false;
    }
    buffer_.Push(e);
    stats_.max_buffer_size = std::max(
        stats_.max_buffer_size, static_cast<int64_t>(buffer_.size()));
    return true;
  }

  /// Releases (in order) all buffered events with event_time <= threshold,
  /// advances the watermark to max(watermark, threshold) and notifies the
  /// sink. `now` is the arrival time driving latency accounting.
  void ReleaseUpTo(TimestampUs threshold, TimestampUs now, EventSink* sink) {
    if (threshold == kMinTimestamp) return;
    release_scratch_.clear();
    if (buffer_.PopUpTo(threshold, &release_scratch_) > 0) {
      for (const Event& e : release_scratch_) RecordRelease(e, now);
      sink->OnEvents(release_scratch_, now);
      if (observer_ != nullptr) {
        observer_->OnHandlerRelease(
            static_cast<int64_t>(release_scratch_.size()), buffer_.size(),
            threshold);
      }
    }
    if (emitted_frontier_ == kMinTimestamp || threshold > emitted_frontier_) {
      emitted_frontier_ = threshold;
      sink->OnWatermark(emitted_frontier_, now);
    }
  }

  /// Batched hot loop shared by the K-slack family's OnBatch overrides.
  /// Replays exactly the per-event sequence — lateness check, buffer
  /// insert, release, watermark — for each element of `batch`, with the
  /// subclass's per-event control logic supplied statically via `policy`
  /// so everything inlines.
  ///
  /// Policy contract (each member invoked once per event, in this order):
  ///   policy.BeforeIngest(e)           — runs before t_max advances
  ///                                      (lateness observation, counters);
  ///   policy.AfterIngest(e, buffered)  — runs after the ingest decision
  ///                                      (adaptation steps); `buffered` is
  ///                                      false iff the event was diverted
  ///                                      late;
  ///   policy.slack()                   — slack bound for this event's
  ///                                      release (post-adaptation).
  template <typename Policy>
  void ProcessBatch(std::span<const Event> batch, EventSink* sink,
                    Policy&& policy) {
    for (const Event& e : batch) {
      policy.BeforeIngest(e);
      const bool was_buffered = Ingest(e, sink);
      policy.AfterIngest(e, was_buffered);
      if (was_buffered) {
        ReleaseUpTo(ReleaseThreshold(policy.slack()), e.arrival_time, sink);
      }
    }
  }

  /// Computes `t_max - slack` without underflow. Returns kMinTimestamp when
  /// no event has been seen.
  TimestampUs ReleaseThreshold(DurationUs slack) const {
    if (t_max_ == kMinTimestamp) return kMinTimestamp;
    if (slack < 0) slack = 0;
    if (t_max_ < kMinTimestamp + slack) return kMinTimestamp;
    return t_max_ - slack;
  }

  /// Drains the entire buffer (end of stream) and emits kMaxTimestamp.
  void DrainAll(TimestampUs now, EventSink* sink);

  /// Applies the adaptive-K clamp (no-op when max_slack is unset).
  /// Subclasses call this on every recomputed K so control loops cannot
  /// request a buffer the cap forbids.
  DurationUs ClampSlack(DurationUs k) const {
    return (max_slack_ > 0 && k > max_slack_) ? max_slack_ : k;
  }

  DurationUs max_slack() const { return max_slack_; }

  ReorderBuffer buffer_;
  TimestampUs t_max_ = kMinTimestamp;
  TimestampUs emitted_frontier_ = kMinTimestamp;
  /// Arrival time of the latest activity (event or heartbeat); used as
  /// "now" for terminal flushes.
  TimestampUs last_activity_ = 0;

 private:
  /// Cold path of Ingest: the buffer is at its cap. Returns true if the
  /// caller should proceed to buffer `e` (room was made, or `e` will be
  /// diverted late anyway), false if `e` was consumed (kDropNewest).
  bool MakeRoomForIngest(const Event& e, EventSink* sink);

  size_t max_buffered_events_ = 0;
  ShedPolicy shed_policy_ = ShedPolicy::kEmitEarly;
  DurationUs max_slack_ = 0;
  std::vector<Event> release_scratch_;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_BUFFERED_HANDLER_BASE_H_
