#ifndef STREAMQ_DISORDER_BUFFERED_HANDLER_BASE_H_
#define STREAMQ_DISORDER_BUFFERED_HANDLER_BASE_H_

#include <algorithm>

#include "disorder/disorder_handler.h"
#include "disorder/reorder_buffer.h"

namespace streamq {

/// Shared machinery for every buffering handler: the reorder buffer, the
/// event-time frontier `t_max`, the output watermark, and the release
/// procedure. Subclasses only decide *when* and *up to where* to release.
class BufferedHandlerBase : public DisorderHandler {
 public:
  explicit BufferedHandlerBase(bool collect_latency_samples = true)
      : DisorderHandler(collect_latency_samples) {}

  size_t buffered() const override { return buffer_.size(); }

  /// Advances the frontier to the promised bound and releases with the
  /// handler's current slack. Works for every buffered handler because the
  /// release bound is current_slack(), which subclasses keep up to date.
  void OnHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time,
                   EventSink* sink) override;

  /// Event-time frontier: max event time seen so far.
  TimestampUs frontier() const { return t_max_; }

  /// Current output watermark (last emitted).
  TimestampUs watermark() const { return emitted_frontier_; }

 protected:
  /// Inserts `e` into the buffer unless it is already behind the output
  /// watermark, in which case it is diverted to OnLateEvent. Updates t_max
  /// and stats. Returns true if the event was buffered.
  bool Ingest(const Event& e, EventSink* sink);

  /// Releases (in order) all buffered events with event_time <= threshold,
  /// advances the watermark to max(watermark, threshold) and notifies the
  /// sink. `now` is the arrival time driving latency accounting.
  void ReleaseUpTo(TimestampUs threshold, TimestampUs now, EventSink* sink);

  /// Computes `t_max - slack` without underflow. Returns kMinTimestamp when
  /// no event has been seen.
  TimestampUs ReleaseThreshold(DurationUs slack) const {
    if (t_max_ == kMinTimestamp) return kMinTimestamp;
    if (slack < 0) slack = 0;
    if (t_max_ < kMinTimestamp + slack) return kMinTimestamp;
    return t_max_ - slack;
  }

  /// Drains the entire buffer (end of stream) and emits kMaxTimestamp.
  void DrainAll(TimestampUs now, EventSink* sink);

  ReorderBuffer buffer_;
  TimestampUs t_max_ = kMinTimestamp;
  TimestampUs emitted_frontier_ = kMinTimestamp;
  /// Arrival time of the latest activity (event or heartbeat); used as
  /// "now" for terminal flushes.
  TimestampUs last_activity_ = 0;

 private:
  std::vector<Event> release_scratch_;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_BUFFERED_HANDLER_BASE_H_
