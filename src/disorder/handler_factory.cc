#include "disorder/handler_factory.h"

#include <cstdio>

#include "common/logging.h"

namespace streamq {

DisorderHandlerSpec DisorderHandlerSpec::PassThroughSpec() {
  DisorderHandlerSpec s;
  s.kind = Kind::kPassThrough;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::FixedK(DurationUs k) {
  DisorderHandlerSpec s;
  s.kind = Kind::kFixedKSlack;
  s.fixed_k = k;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Mp(const MpKSlack::Options& options) {
  DisorderHandlerSpec s;
  s.kind = Kind::kMpKSlack;
  s.mp = options;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Aq(const AqKSlack::Options& options,
                                            double quality_gamma) {
  DisorderHandlerSpec s;
  s.kind = Kind::kAqKSlack;
  s.aq = options;
  s.aq_quality_gamma = quality_gamma;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Lb(const LbKSlack::Options& options) {
  DisorderHandlerSpec s;
  s.kind = Kind::kLbKSlack;
  s.lb = options;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Watermark(
    const WatermarkReorderer::Options& options) {
  DisorderHandlerSpec s;
  s.kind = Kind::kWatermark;
  s.wm = options;
  return s;
}

std::string DisorderHandlerSpec::Describe() const {
  if (per_key) {
    DisorderHandlerSpec inner = *this;
    inner.per_key = false;
    return "per-key[" + inner.Describe() + "]";
  }
  char buf[128];
  switch (kind) {
    case Kind::kPassThrough:
      return "pass-through";
    case Kind::kFixedKSlack:
      std::snprintf(buf, sizeof(buf), "fixed-kslack(K=%s)",
                    FormatDuration(fixed_k).c_str());
      return buf;
    case Kind::kMpKSlack:
      std::snprintf(buf, sizeof(buf), "mp-kslack(%s, w=%lld, beta=%.2f)",
                    mp.mode == MpKSlack::Mode::kGrowOnly ? "grow" : "sliding",
                    static_cast<long long>(mp.window_size), mp.safety_factor);
      return buf;
    case Kind::kAqKSlack:
      std::snprintf(buf, sizeof(buf), "aq-kslack(q*=%.3f)", aq.target_quality);
      return buf;
    case Kind::kLbKSlack:
      std::snprintf(buf, sizeof(buf), "lb-kslack(L*=%s)",
                    FormatDuration(lb.latency_budget).c_str());
      return buf;
    case Kind::kWatermark:
      std::snprintf(buf, sizeof(buf), "watermark(bound=%s, lateness=%s)",
                    FormatDuration(wm.bound).c_str(),
                    FormatDuration(wm.allowed_lateness).c_str());
      return buf;
  }
  return "?";
}

std::unique_ptr<DisorderHandler> MakeDisorderHandler(
    const DisorderHandlerSpec& spec) {
  if (spec.per_key && spec.kind != DisorderHandlerSpec::Kind::kPassThrough) {
    DisorderHandlerSpec inner = spec;
    inner.per_key = false;
    return std::make_unique<KeyedDisorderHandler>(
        [inner] { return MakeDisorderHandler(inner); });
  }
  const bool samples = spec.collect_latency_samples;
  switch (spec.kind) {
    case DisorderHandlerSpec::Kind::kPassThrough:
      return std::make_unique<PassThrough>(samples);
    case DisorderHandlerSpec::Kind::kFixedKSlack:
      return std::make_unique<FixedKSlack>(spec.fixed_k, samples);
    case DisorderHandlerSpec::Kind::kMpKSlack: {
      MpKSlack::Options options = spec.mp;
      options.collect_latency_samples &= samples;
      return std::make_unique<MpKSlack>(options);
    }
    case DisorderHandlerSpec::Kind::kAqKSlack: {
      std::unique_ptr<QualityModel> model;
      if (spec.aq_quality_gamma > 0.0) {
        model = MakePowerQualityModel(spec.aq_quality_gamma);
      }
      AqKSlack::Options options = spec.aq;
      options.collect_latency_samples &= samples;
      return std::make_unique<AqKSlack>(options, std::move(model));
    }
    case DisorderHandlerSpec::Kind::kLbKSlack: {
      LbKSlack::Options options = spec.lb;
      options.collect_latency_samples &= samples;
      return std::make_unique<LbKSlack>(options);
    }
    case DisorderHandlerSpec::Kind::kWatermark: {
      WatermarkReorderer::Options options = spec.wm;
      options.collect_latency_samples &= samples;
      return std::make_unique<WatermarkReorderer>(options);
    }
  }
  STREAMQ_LOG(Fatal) << "unknown disorder handler kind";
  return nullptr;
}

}  // namespace streamq
