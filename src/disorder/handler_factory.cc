#include "disorder/handler_factory.h"

#include <cstdio>

#include "common/logging.h"

namespace streamq {

DisorderHandlerSpec DisorderHandlerSpec::PassThrough() {
  DisorderHandlerSpec s;
  s.kind = Kind::kPassThrough;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Fixed(DurationUs k) {
  DisorderHandlerSpec s;
  s.kind = Kind::kFixedKSlack;
  s.fixed_k = k;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::PerKey(bool enabled) const {
  DisorderHandlerSpec s = *this;
  s.per_key = enabled;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::WithLatencySamples(
    bool enabled) const {
  DisorderHandlerSpec s = *this;
  s.collect_latency_samples = enabled;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::WithBufferEngine(
    ReorderBuffer::Engine engine) const {
  DisorderHandlerSpec s = *this;
  s.buffer_engine = engine;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::WithBufferCap(
    size_t max_buffered_events, ShedPolicy policy) const {
  DisorderHandlerSpec s = *this;
  s.max_buffered_events = max_buffered_events;
  s.shed_policy = policy;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::WithMaxSlack(
    DurationUs max_slack) const {
  DisorderHandlerSpec s = *this;
  s.max_slack = max_slack;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::WithArena(bool enabled) const {
  DisorderHandlerSpec s = *this;
  s.use_arena = enabled;
  return s;
}

Status DisorderHandlerSpec::Validate() const {
  if (max_slack < 0) {
    return Status::InvalidArgument("spec: max_slack must be >= 0");
  }
  switch (kind) {
    case Kind::kPassThrough:
      break;
    case Kind::kFixedKSlack:
      if (fixed_k < 0) {
        return Status::InvalidArgument("fixed-kslack: K must be >= 0");
      }
      break;
    case Kind::kMpKSlack:
      if (mp.window_size <= 0) {
        return Status::InvalidArgument("mp-kslack: window_size must be > 0");
      }
      if (mp.safety_factor < 0.0) {
        return Status::InvalidArgument(
            "mp-kslack: safety_factor must be >= 0");
      }
      break;
    case Kind::kAqKSlack:
      if (aq.target_quality <= 0.0 || aq.target_quality > 1.0) {
        return Status::InvalidArgument(
            "aq-kslack: target_quality must be in (0, 1]");
      }
      if (aq.adaptation_interval <= 0) {
        return Status::InvalidArgument(
            "aq-kslack: adaptation_interval must be > 0");
      }
      if (aq.p_min <= 0.0 || aq.p_max > 1.0 || aq.p_min >= aq.p_max) {
        return Status::InvalidArgument(
            "aq-kslack: need 0 < p_min < p_max <= 1");
      }
      if (aq.max_step <= 0.0) {
        return Status::InvalidArgument("aq-kslack: max_step must be > 0");
      }
      if (aq.quality_smoothing_alpha <= 0.0 ||
          aq.quality_smoothing_alpha > 1.0) {
        return Status::InvalidArgument(
            "aq-kslack: quality_smoothing_alpha must be in (0, 1]");
      }
      if (aq_quality_gamma < 0.0) {
        return Status::InvalidArgument(
            "aq-kslack: quality gamma must be >= 0 (0 = coverage model)");
      }
      break;
    case Kind::kLbKSlack:
      if (lb.latency_budget <= 0) {
        return Status::InvalidArgument(
            "lb-kslack: latency_budget must be > 0");
      }
      if (lb.adaptation_interval <= 0) {
        return Status::InvalidArgument(
            "lb-kslack: adaptation_interval must be > 0");
      }
      if (lb.p_min < 0.0 || lb.p_max > 1.0 || lb.p_min >= lb.p_max) {
        return Status::InvalidArgument(
            "lb-kslack: need 0 <= p_min < p_max <= 1");
      }
      if (lb.max_step <= 0.0) {
        return Status::InvalidArgument("lb-kslack: max_step must be > 0");
      }
      break;
    case Kind::kWatermark:
      if (wm.bound < 0) {
        return Status::InvalidArgument("watermark: bound must be >= 0");
      }
      if (wm.period_events <= 0) {
        return Status::InvalidArgument(
            "watermark: period_events must be > 0");
      }
      if (wm.allowed_lateness < 0) {
        return Status::InvalidArgument(
            "watermark: allowed_lateness must be >= 0");
      }
      break;
    case Kind::kSpeculative:
      if (speculative.target_quality <= 0.0 ||
          speculative.target_quality > 1.0) {
        return Status::InvalidArgument(
            "speculative: target_quality must be in (0, 1]");
      }
      if (speculative.adaptation_interval <= 0) {
        return Status::InvalidArgument(
            "speculative: adaptation_interval must be > 0");
      }
      if (speculative.p_min <= 0.0 || speculative.p_max > 1.0 ||
          speculative.p_min >= speculative.p_max) {
        return Status::InvalidArgument(
            "speculative: need 0 < p_min < p_max <= 1");
      }
      if (speculative.max_step <= 0.0) {
        return Status::InvalidArgument("speculative: max_step must be > 0");
      }
      if (speculative.quality_smoothing_alpha <= 0.0 ||
          speculative.quality_smoothing_alpha > 1.0) {
        return Status::InvalidArgument(
            "speculative: quality_smoothing_alpha must be in (0, 1]");
      }
      if (aq_quality_gamma < 0.0) {
        return Status::InvalidArgument(
            "speculative: quality gamma must be >= 0 (0 = coverage model)");
      }
      break;
  }
  return Status::OK();
}

DisorderHandlerSpec DisorderHandlerSpec::Mp(const MpKSlack::Options& options) {
  DisorderHandlerSpec s;
  s.kind = Kind::kMpKSlack;
  s.mp = options;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Aq(const AqKSlack::Options& options,
                                            double quality_gamma) {
  DisorderHandlerSpec s;
  s.kind = Kind::kAqKSlack;
  s.aq = options;
  s.aq_quality_gamma = quality_gamma;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Lb(const LbKSlack::Options& options) {
  DisorderHandlerSpec s;
  s.kind = Kind::kLbKSlack;
  s.lb = options;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Watermark(
    const WatermarkReorderer::Options& options) {
  DisorderHandlerSpec s;
  s.kind = Kind::kWatermark;
  s.wm = options;
  return s;
}

DisorderHandlerSpec DisorderHandlerSpec::Speculative(
    const SpeculativeHandler::Options& options, double quality_gamma) {
  DisorderHandlerSpec s;
  s.kind = Kind::kSpeculative;
  s.speculative = options;
  s.aq_quality_gamma = quality_gamma;
  return s;
}

std::string DisorderHandlerSpec::Describe() const {
  if (max_buffered_events != 0) {
    DisorderHandlerSpec inner = *this;
    inner.max_buffered_events = 0;
    char cap[64];
    std::snprintf(cap, sizeof(cap), "+cap(%zu,%s)", max_buffered_events,
                  ShedPolicyName(shed_policy));
    return inner.Describe() + cap;
  }
  if (per_key) {
    DisorderHandlerSpec inner = *this;
    inner.per_key = false;
    return "per-key[" + inner.Describe() + "]";
  }
  char buf[128];
  switch (kind) {
    case Kind::kPassThrough:
      return "pass-through";
    case Kind::kFixedKSlack:
      std::snprintf(buf, sizeof(buf), "fixed-kslack(K=%s)",
                    FormatDuration(fixed_k).c_str());
      return buf;
    case Kind::kMpKSlack:
      std::snprintf(buf, sizeof(buf), "mp-kslack(%s, w=%lld, beta=%.2f)",
                    mp.mode == MpKSlack::Mode::kGrowOnly ? "grow" : "sliding",
                    static_cast<long long>(mp.window_size), mp.safety_factor);
      return buf;
    case Kind::kAqKSlack:
      std::snprintf(buf, sizeof(buf), "aq-kslack(q*=%.3f)", aq.target_quality);
      return buf;
    case Kind::kLbKSlack:
      std::snprintf(buf, sizeof(buf), "lb-kslack(L*=%s)",
                    FormatDuration(lb.latency_budget).c_str());
      return buf;
    case Kind::kWatermark:
      std::snprintf(buf, sizeof(buf), "watermark(bound=%s, lateness=%s)",
                    FormatDuration(wm.bound).c_str(),
                    FormatDuration(wm.allowed_lateness).c_str());
      return buf;
    case Kind::kSpeculative:
      std::snprintf(buf, sizeof(buf), "speculative(q*=%.3f)",
                    speculative.target_quality);
      return buf;
  }
  return "?";
}

namespace {

/// Builds a pre-validated spec (shared by the checked and OrDie entry
/// points; the keyed wrapper recurses here with per_key stripped).
std::unique_ptr<DisorderHandler> BuildHandler(const DisorderHandlerSpec& spec);

std::unique_ptr<DisorderHandler> BuildHandlerInner(
    const DisorderHandlerSpec& spec) {
  if (spec.per_key && spec.kind != DisorderHandlerSpec::Kind::kPassThrough) {
    DisorderHandlerSpec inner = spec.PerKey(false);
    // The keyed wrapper enforces the cap as one global budget across all
    // keys; shards stay uncapped (max_slack still reaches them below).
    inner.max_buffered_events = 0;
    return std::make_unique<KeyedDisorderHandler>(
        [inner] { return BuildHandler(inner); });
  }
  const bool samples = spec.collect_latency_samples;
  switch (spec.kind) {
    case DisorderHandlerSpec::Kind::kPassThrough:
      return std::make_unique<PassThrough>(samples);
    case DisorderHandlerSpec::Kind::kFixedKSlack:
      return std::make_unique<FixedKSlack>(spec.fixed_k, samples);
    case DisorderHandlerSpec::Kind::kMpKSlack: {
      MpKSlack::Options options = spec.mp;
      options.collect_latency_samples &= samples;
      return std::make_unique<MpKSlack>(options);
    }
    case DisorderHandlerSpec::Kind::kAqKSlack: {
      std::unique_ptr<QualityModel> model;
      if (spec.aq_quality_gamma > 0.0) {
        model = MakePowerQualityModel(spec.aq_quality_gamma);
      }
      AqKSlack::Options options = spec.aq;
      options.collect_latency_samples &= samples;
      return std::make_unique<AqKSlack>(options, std::move(model));
    }
    case DisorderHandlerSpec::Kind::kLbKSlack: {
      LbKSlack::Options options = spec.lb;
      options.collect_latency_samples &= samples;
      return std::make_unique<LbKSlack>(options);
    }
    case DisorderHandlerSpec::Kind::kWatermark: {
      WatermarkReorderer::Options options = spec.wm;
      options.collect_latency_samples &= samples;
      return std::make_unique<WatermarkReorderer>(options);
    }
    case DisorderHandlerSpec::Kind::kSpeculative: {
      std::unique_ptr<QualityModel> model;
      if (spec.aq_quality_gamma > 0.0) {
        model = MakePowerQualityModel(spec.aq_quality_gamma);
      }
      SpeculativeHandler::Options options = spec.speculative;
      options.collect_latency_samples &= samples;
      return std::make_unique<SpeculativeHandler>(options, std::move(model));
    }
  }
  STREAMQ_LOG(Fatal) << "unknown disorder handler kind";
  return nullptr;
}

std::unique_ptr<DisorderHandler> BuildHandler(const DisorderHandlerSpec& spec) {
  std::unique_ptr<DisorderHandler> handler = BuildHandlerInner(spec);
  // Applied on every layer (keyed wrapper and shards alike): the wrapper
  // remembers the engine for shards created later, and shard specs reach
  // here again through the factory recursion.
  handler->set_buffer_engine(spec.buffer_engine);
  if (spec.max_buffered_events != 0) {
    handler->set_buffer_cap(spec.max_buffered_events, spec.shed_policy);
  }
  if (spec.max_slack > 0) {
    handler->set_max_slack(spec.max_slack);
  }
  if (spec.use_arena) {
    handler->set_buffer_arena(&GlobalEventArena());
  }
  return handler;
}

}  // namespace

Status MakeDisorderHandler(const DisorderHandlerSpec& spec,
                           std::unique_ptr<DisorderHandler>* out) {
  STREAMQ_CHECK(out != nullptr);
  out->reset();
  STREAMQ_RETURN_NOT_OK(spec.Validate());
  *out = BuildHandler(spec);
  return Status::OK();
}

std::unique_ptr<DisorderHandler> MakeDisorderHandlerOrDie(
    const DisorderHandlerSpec& spec) {
  std::unique_ptr<DisorderHandler> handler;
  const Status status = MakeDisorderHandler(spec, &handler);
  STREAMQ_CHECK(status.ok()) << status.ToString();
  return handler;
}

}  // namespace streamq
