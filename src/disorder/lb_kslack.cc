#include "disorder/lb_kslack.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace streamq {

LbKSlack::LbKSlack(const Options& options)
    : BufferedHandlerBase(options.collect_latency_samples),
      options_(options),
      lateness_sketch_(options.sketch_window),
      pi_(PiController::Options{
          .kp = options.kp,
          .ki = options.ki,
          .out_min = -1.0,
          .out_max = 1.0,
          .integral_limit = 1.0,
      }) {
  STREAMQ_CHECK_GT(options.latency_budget, 0);
  STREAMQ_CHECK_GT(options.adaptation_interval, 0);
  STREAMQ_CHECK_GE(options.p_min, 0.0);
  STREAMQ_CHECK_LE(options.p_max, 1.0);
  STREAMQ_CHECK_LT(options.p_min, options.p_max);
  STREAMQ_CHECK_GT(options.max_step, 0.0);
}

void LbKSlack::OnEvent(const Event& e, EventSink* sink) {
  ++interval_events_;

  if (t_max_ != kMinTimestamp && e.event_time < t_max_) {
    lateness_sketch_.Add(static_cast<double>(t_max_ - e.event_time));
  } else {
    lateness_sketch_.Add(0.0);
  }

  const bool buffered = Ingest(e, sink);
  if (interval_events_ >= options_.adaptation_interval) {
    Adapt();
  }
  if (buffered) {
    ReleaseUpTo(ReleaseThreshold(k_), e.arrival_time, sink);
  }
}

void LbKSlack::OnBatch(std::span<const Event> batch, EventSink* sink) {
  struct Policy {
    LbKSlack* self;
    void BeforeIngest(const Event& e) {
      ++self->interval_events_;
      if (self->t_max_ != kMinTimestamp && e.event_time < self->t_max_) {
        self->lateness_sketch_.Add(
            static_cast<double>(self->t_max_ - e.event_time));
      } else {
        self->lateness_sketch_.Add(0.0);
      }
    }
    void AfterIngest(const Event&, bool) {
      if (self->interval_events_ >= self->options_.adaptation_interval) {
        self->Adapt();
      }
    }
    DurationUs slack() const { return self->k_; }
  };
  ProcessBatch(batch, sink, Policy{this});
}

void LbKSlack::Adapt() {
  interval_events_ = 0;

  // Mean buffering latency of tuples released since the last adaptation.
  const double total_sum = stats_.buffering_latency_us.sum();
  const int64_t total_count = stats_.buffering_latency_us.count();
  const int64_t interval_count = total_count - prev_release_count_;
  if (interval_count > 0) {
    last_interval_latency_ =
        (total_sum - prev_latency_sum_) / static_cast<double>(interval_count);
  }
  prev_latency_sum_ = total_sum;
  prev_release_count_ = total_count;

  // Normalized error: positive when under budget (room to buffer more and
  // harvest quality), negative when over budget (shed latency).
  const double budget = static_cast<double>(options_.latency_budget);
  const double error = (budget - last_interval_latency_) / budget;
  const double u = pi_.Update(error);

  // The PI output moves the setpoint around its neutral midpoint; slew
  // limiting keeps K changes bounded per interval.
  const double target_p =
      std::clamp(0.5 + 0.5 * u, options_.p_min, options_.p_max);
  const double step =
      std::clamp(target_p - p_, -options_.max_step, options_.max_step);
  p_ += step;
  const DurationUs old_k = k_;
  k_ = ClampSlack(
      static_cast<DurationUs>(std::ceil(lateness_sketch_.Quantile(p_))));

  if (observer_ != nullptr) {
    if (k_ != old_k) observer_->OnSlackChanged(old_k, k_);
    observer_->OnAdaptation(AdaptationSample{
        .tuple_index = prev_release_count_,
        .stream_time = last_activity_,
        .measured = last_interval_latency_,
        .setpoint = p_,
        .k = k_,
        .buffer_size = buffer_.size(),
    });
  }
}

void LbKSlack::Flush(EventSink* sink) { DrainAll(last_activity_, sink); }

}  // namespace streamq
