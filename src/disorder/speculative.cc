#include "disorder/speculative.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/pipeline_observer.h"

namespace streamq {

SpeculativeHandler::SpeculativeHandler(
    const Options& options, std::unique_ptr<QualityModel> quality_model)
    : DisorderHandler(options.collect_latency_samples),
      options_(options),
      quality_model_(quality_model ? std::move(quality_model)
                                   : MakeCoverageQualityModel()),
      lateness_sketch_(options.sketch_window),
      pi_(PiController::Options{
          .kp = options.kp,
          .ki = options.ki,
          .out_min = -options.trim_limit,
          .out_max = options.trim_limit,
          .integral_limit = options.trim_limit,
      }) {
  STREAMQ_CHECK_GT(options.target_quality, 0.0);
  STREAMQ_CHECK_LE(options.target_quality, 1.0);
  STREAMQ_CHECK_GT(options.adaptation_interval, 0);
  STREAMQ_CHECK_GT(options.p_min, 0.0);
  STREAMQ_CHECK_LE(options.p_max, 1.0);
  STREAMQ_CHECK_LT(options.p_min, options.p_max);
  STREAMQ_CHECK_GT(options.max_step, 0.0);
  STREAMQ_CHECK_GT(options.quality_smoothing_alpha, 0.0);
  STREAMQ_CHECK_LE(options.quality_smoothing_alpha, 1.0);
  p_ = std::clamp(quality_model_->CoverageForQuality(options.target_quality),
                  options.p_min, options.p_max);
}

void SpeculativeHandler::OnEvent(const Event& e, EventSink* sink) {
  ++stats_.events_in;
  ++tuple_index_;
  ++interval_events_;
  last_arrival_ = e.arrival_time;

  // Observe lateness against the pre-update frontier — the hold a zero-
  // amendment policy would have needed for this tuple.
  if (frontier_ != kMinTimestamp && e.event_time < frontier_) {
    lateness_sketch_.Add(static_cast<double>(frontier_ - e.event_time));
  } else {
    lateness_sketch_.Add(0.0);
    frontier_ = e.event_time;
  }

  if (watermark_ != kMinTimestamp && e.event_time < watermark_) {
    // Behind the held watermark: this tuple will amend an already-emitted
    // provisional result (or be a loss beyond allowed lateness).
    ++stats_.events_late;
    ++interval_late_;
    if (observer_ != nullptr) observer_->OnLateEvent(e);
    sink->OnLateEvent(e);
  } else {
    // Inside the hold band (or ahead of the frontier): forward right away,
    // possibly out of event-time order — the amend engine folds it into
    // not-yet-final window state.
    RecordRelease(e, e.arrival_time);  // Zero buffering latency.
    sink->OnEvent(e);
  }

  if (interval_events_ >= options_.adaptation_interval) {
    Adapt(e.arrival_time);
  }

  // Advance the held watermark: trail the frontier by the hold slack,
  // monotone even when the slack widens.
  const TimestampUs held =
      (frontier_ < kMinTimestamp + k_hold_) ? kMinTimestamp
                                            : frontier_ - k_hold_;
  if (held > watermark_ || watermark_ == kMinTimestamp) {
    watermark_ = held;
    sink->OnWatermark(watermark_, e.arrival_time);
    if (observer_ != nullptr) {
      observer_->OnHandlerRelease(0, 0, watermark_);
    }
  }
}

void SpeculativeHandler::Adapt(TimestampUs now) {
  const double interval_amend_rate =
      interval_events_ > 0 ? static_cast<double>(interval_late_) /
                                 static_cast<double>(interval_events_)
                           : 0.0;
  const double interval_quality =
      quality_model_->QualityFromCoverage(1.0 - interval_amend_rate);
  if (!have_measurement_) {
    measured_quality_ = interval_quality;
    amend_rate_ = interval_amend_rate;
    have_measurement_ = true;
  } else {
    const double a = options_.quality_smoothing_alpha;
    measured_quality_ = a * interval_quality + (1.0 - a) * measured_quality_;
    amend_rate_ = a * interval_amend_rate + (1.0 - a) * amend_rate_;
  }
  interval_events_ = 0;
  interval_late_ = 0;

  const double feed_forward = std::clamp(
      quality_model_->CoverageForQuality(options_.target_quality),
      options_.p_min, options_.p_max);
  const double error = options_.target_quality - measured_quality_;
  const double trim = pi_.Update(error);

  double target_p =
      std::clamp(feed_forward + trim, options_.p_min, options_.p_max);
  const double step =
      std::clamp(target_p - p_, -options_.max_step, options_.max_step);
  p_ += step;

  const DurationUs old_k = k_hold_;
  k_hold_ =
      static_cast<DurationUs>(std::ceil(lateness_sketch_.Quantile(p_)));
  if (max_slack_ > 0) k_hold_ = std::min(k_hold_, max_slack_);

  if (observer_ != nullptr) {
    if (k_hold_ != old_k) observer_->OnSlackChanged(old_k, k_hold_);
    observer_->OnAdaptation(AdaptationSample{
        .tuple_index = tuple_index_,
        .stream_time = now,
        .measured = measured_quality_,
        .setpoint = p_,
        .k = k_hold_,
        .buffer_size = 0,
    });
  }
}

void SpeculativeHandler::OnHeartbeat(TimestampUs event_time_bound,
                                     TimestampUs stream_time,
                                     EventSink* sink) {
  last_arrival_ = std::max(last_arrival_, stream_time);
  if (frontier_ == kMinTimestamp || event_time_bound > frontier_) {
    frontier_ = event_time_bound;
  }
  // The source promises no future arrival below the bound, so no amendment
  // below it can occur: release the full hold.
  if (watermark_ == kMinTimestamp || event_time_bound > watermark_) {
    watermark_ = event_time_bound;
    sink->OnWatermark(watermark_, stream_time);
  }
}

void SpeculativeHandler::Flush(EventSink* sink) {
  sink->OnWatermark(kMaxTimestamp, last_arrival_);
}

}  // namespace streamq
