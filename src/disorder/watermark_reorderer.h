#ifndef STREAMQ_DISORDER_WATERMARK_REORDERER_H_
#define STREAMQ_DISORDER_WATERMARK_REORDERER_H_

#include "disorder/buffered_handler_base.h"

namespace streamq {

/// Flink-style heuristic-watermark baseline: a bounded-out-of-orderness
/// watermark `frontier - bound` generated every `period_events` arrivals
/// drives releases. Tuples later than the watermark are forwarded as late if
/// within `allowed_lateness` (downstream may amend already-fired windows) and
/// dropped beyond it.
///
/// Differences from FixedKSlack: releases happen only at watermark ticks
/// (batchier, cheaper, slightly higher latency for period > 1), and the
/// late/drop split is explicit. Like FixedKSlack, the bound is static —
/// quality is whatever the bound happens to deliver.
class WatermarkReorderer : public BufferedHandlerBase {
 public:
  struct Options {
    /// Watermark lag behind the event-time frontier (the "bounded
    /// out-of-orderness" assumption), in event-time microseconds.
    DurationUs bound = 50000;

    /// Generate a watermark every this many arrivals (1 = per tuple).
    int64_t period_events = 32;

    /// Late tuples within this much of the watermark are still forwarded
    /// via OnLateEvent; beyond it they are dropped.
    DurationUs allowed_lateness = 0;

    bool collect_latency_samples = true;
  };

  explicit WatermarkReorderer(const Options& options);

  std::string_view name() const override { return "watermark"; }

  void OnEvent(const Event& e, EventSink* sink) override;
  void OnBatch(std::span<const Event> batch, EventSink* sink) override;
  void Flush(EventSink* sink) override;

  DurationUs current_slack() const override { return options_.bound; }

 private:
  Options options_;
  int64_t since_tick_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISORDER_WATERMARK_REORDERER_H_
