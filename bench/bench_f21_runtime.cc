/// R-F21 — Extreme-scale runtime: arena batch memory, lock-free MPSC
/// ingestion, and skew-aware shard rebalancing.
///
/// Four sections in one table (CSV: bench_results/f21_runtime.csv). Every
/// compared pair carries a checksum over its output, and the CI gates
/// (tools/check_bench_regression.py, f21 suite) hold the checksums equal:
/// these are performance switches, never semantic ones.
///
///   * section=feed — the allocation primitive in isolation: the runners'
///     exact feed loop (fill scratch slab → Share → SPSC queue → consumer
///     drops the last reference cross-thread) with arena pooling on vs off.
///     Pooling off is one heap allocation per batch freed on the consumer
///     thread — the classic producer/consumer malloc ping-pong. Small
///     batches amortize least, so batch=16 is where the arena must earn
///     its keep (>= 1.3x, hard); larger batches must never invert.
///
///   * section=pipeline — the whole ShardedKeyedRunner on a Zipf-keyed
///     stream, arena on vs off. End-to-end the window operator dominates,
///     so this is a no-inversion guard, not a speedup claim.
///
///   * section=mpsc — ingestion scaling when the stream is physically many
///     feeds: key-disjoint throttled sources (each sleeps between batches,
///     like a socket would) through 1, 2, and 4 producer threads. The
///     sleeps overlap across producers, so even a single-core runner shows
///     real wall-clock scaling: p2 >= 1.3x p1 (hard), with identical
///     first-emission checksums across all producer counts.
///
///   * section=skew — rebalancing pay-off and tax, on the adversarial case
///     shard rebalancing exists for: the hot keys all hash-colocate on one
///     worker under static placement. config=sink-latency models a sink
///     whose cost is per tuple (the observer sleeps on the worker thread,
///     proportional to tuples released): static placement serializes ~60%
///     of that latency on the colocated worker; migrating the hot shards
///     spreads it, so static/rebalance wall >= 1.2x (hard), with
///     migrations > 0 and byte-identical output. config=pure-cpu is the
///     same stream with no sink latency: the rebalancer's bookkeeping must
///     stay in the noise (soft).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/arena.h"
#include "core/parallel_runner.h"
#include "core/pipeline_observer.h"
#include "core/spsc_queue.h"
#include "stream/event.h"
#include "stream/generator.h"
#include "stream/source.h"

namespace streamq {
namespace bench {
namespace {

/// Order-sensitive FNV-style fold (same as R-F19/R-F20).
uint64_t Fold(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v);
  h *= 0x100000001B3ull;
  return h;
}

/// Zipf-keyed, bounded-delay workload: delays < K = 50ms, so nothing is
/// ever late, no revisions fire, and first emissions are invariant to both
/// placement and source interleaving — the precondition for checksum
/// equality across every compared row.
std::vector<Event> SkewedStream(int64_t n, double zipf_s, uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 10000.0;
  cfg.num_keys = 64;
  cfg.key_zipf_s = zipf_s;
  cfg.delay.model = DelayModel::kUniform;
  cfg.delay.a = 0.0;
  cfg.delay.b = 30000.0;
  cfg.seed = seed;
  return GenerateWorkload(cfg).arrival_order;
}

ContinuousQuery KeyedQuery(bool arena) {
  ContinuousQuery q;
  q.name = "f21";
  q.handler = DisorderHandlerSpec::Fixed(Millis(50)).PerKey().WithArena(arena);
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.per_key_watermarks = true;
  return q;
}

/// Checksum over a merged report's results (already sorted by (start, key,
/// revision)). Value folded at fixed precision: the compared runs are
/// bitwise-identical per shard, the rounding only guards the int cast.
uint64_t ResultChecksum(const RunReport& report) {
  uint64_t h = 1469598103934665603ull;
  for (const WindowResult& r : report.results) {
    h = Fold(h, r.bounds.start);
    h = Fold(h, r.key);
    h = Fold(h, static_cast<int64_t>(r.value * 1e6));
    h = Fold(h, r.tuple_count);
  }
  return h;
}

struct Row {
  const char* section;
  const char* config;
  const char* mode;
  size_t workers = 0;
  size_t vshards = 0;
  size_t producers = 0;
  int64_t events = 0;
  double wall_ms = 0.0;
  int64_t migrations = 0;
  double max_share = 0.0;
  uint64_t checksum = 0;
};

void EmitRow(TableWriter* table, const Row& r) {
  table->BeginRow();
  table->Cell(r.section);
  table->Cell(r.config);
  table->Cell(r.mode);
  table->Cell(r.workers);
  table->Cell(r.vshards);
  table->Cell(r.producers);
  table->Cell(r.events);
  table->Cell(r.wall_ms, 2);
  table->Cell(static_cast<double>(r.events) / r.wall_ms, 1);  // keps
  table->Cell(r.migrations);
  table->Cell(r.max_share, 3);
  table->Cell(static_cast<int64_t>(r.checksum));
}

// --------------------------------------------------------------- section=feed

struct FeedOutcome {
  double wall_ms = 0.0;
  uint64_t checksum = 0;
};

/// The runners' feed loop in isolation: chunk the stream into `batch`-sized
/// slabs, Share each through an SPSC queue, and drop the last reference on
/// the consumer thread. `pooled` toggles the arena free-lists — off is the
/// malloc path (one heap allocation per batch, freed cross-thread).
FeedOutcome RunFeed(const std::vector<Event>& events, size_t batch,
                    bool pooled) {
  using Arena = SlabArena<Event>;
  Arena arena(Arena::Options{.slab_capacity = batch,
                             .max_free_slabs = pooled ? 1024u : 0u,
                             .max_free_batches = pooled ? 1024u : 0u});
  SpscQueue<Arena::Batch> queue(64);
  uint64_t checksum = 1469598103934665603ull;
  std::thread consumer([&] {
    Arena::Batch b;
    while (queue.Pop(&b)) {
      for (const Event& e : *b) checksum = Fold(checksum, e.id);
      b.reset();  // Last reference: the node frees (or pools) here.
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  Arena::Slab slab = arena.Acquire();
  for (size_t i = 0; i < events.size(); i += batch) {
    const size_t n = std::min(batch, events.size() - i);
    slab.assign(events.begin() + static_cast<ptrdiff_t>(i),
                events.begin() + static_cast<ptrdiff_t>(i + n));
    queue.Push(arena.Share(&slab));
  }
  queue.Close();
  consumer.join();
  const auto t1 = std::chrono::steady_clock::now();
  FeedOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.checksum = checksum;
  return out;
}

void FeedSection(TableWriter* table) {
  const std::vector<Event> events = SkewedStream(2000000, 0.0, 2015);
  for (size_t batch : {size_t{8}, size_t{16}, size_t{64}, size_t{256}}) {
    constexpr int kReps = 5;
    FeedOutcome best_arena, best_malloc;
    for (int rep = 0; rep < kReps; ++rep) {  // Interleaved min-of-N.
      const FeedOutcome a = RunFeed(events, batch, /*pooled=*/true);
      const FeedOutcome m = RunFeed(events, batch, /*pooled=*/false);
      if (rep == 0 || a.wall_ms < best_arena.wall_ms) best_arena = a;
      if (rep == 0 || m.wall_ms < best_malloc.wall_ms) best_malloc = m;
    }
    char config[32];
    std::snprintf(config, sizeof(config), "batch=%zu", batch);
    struct Labeled {
      const char* mode;
      FeedOutcome out;
    };
    for (const Labeled& l :
         {Labeled{"arena", best_arena}, Labeled{"malloc", best_malloc}}) {
      Row row{.section = "feed", .config = config, .mode = l.mode};
      row.workers = 1;
      row.producers = 1;
      row.events = static_cast<int64_t>(events.size());
      row.wall_ms = l.out.wall_ms;
      row.checksum = l.out.checksum;
      EmitRow(table, row);
    }
  }
}

// ----------------------------------------------------------- section=pipeline

struct KeyedOutcome {
  double wall_ms = 0.0;
  int64_t migrations = 0;
  double max_share = 0.0;
  uint64_t checksum = 0;
};

KeyedOutcome RunKeyed(const std::vector<Event>& events, size_t workers,
                      const ParallelOptions& options, bool arena_handler,
                      PipelineObserver* observer) {
  ShardedKeyedRunner runner(KeyedQuery(arena_handler), workers, options);
  if (observer != nullptr) runner.SetObserver(observer);
  VectorSource source(events);
  const RunReport report = runner.Run(&source);
  KeyedOutcome out;
  out.wall_ms = report.wall_seconds * 1000.0;
  out.migrations = runner.migrations();
  int64_t busiest = 0;
  for (const WorkerLoad& load : runner.worker_loads()) {
    busiest = std::max(busiest, load.events_processed);
  }
  out.max_share =
      static_cast<double>(busiest) / static_cast<double>(events.size());
  out.checksum = ResultChecksum(report);
  return out;
}

void PipelineSection(TableWriter* table) {
  const std::vector<Event> events = SkewedStream(400000, 1.2, 2015);
  ParallelOptions base;
  base.batch_size = 64;
  base.virtual_shards = 12;

  constexpr int kReps = 3;
  KeyedOutcome best_arena, best_malloc;
  for (int rep = 0; rep < kReps; ++rep) {
    ParallelOptions arena_opts = base;
    arena_opts.use_arena = true;
    const KeyedOutcome a = RunKeyed(events, 3, arena_opts, true, nullptr);
    ParallelOptions malloc_opts = base;
    malloc_opts.use_arena = false;
    const KeyedOutcome m = RunKeyed(events, 3, malloc_opts, false, nullptr);
    if (rep == 0 || a.wall_ms < best_arena.wall_ms) best_arena = a;
    if (rep == 0 || m.wall_ms < best_malloc.wall_ms) best_malloc = m;
  }
  struct Labeled {
    const char* mode;
    KeyedOutcome out;
  };
  for (const Labeled& l :
       {Labeled{"arena", best_arena}, Labeled{"malloc", best_malloc}}) {
    Row row{.section = "pipeline", .config = "zipf-keyed", .mode = l.mode};
    row.workers = 3;
    row.vshards = 12;
    row.producers = 1;
    row.events = static_cast<int64_t>(events.size());
    row.wall_ms = l.out.wall_ms;
    row.max_share = l.out.max_share;
    row.checksum = l.out.checksum;
    EmitRow(table, row);
  }
}

// --------------------------------------------------------------- section=mpsc

/// A source that sleeps between batches, like a rate-limited network feed.
/// The sleep happens on the producer thread, so P throttled sources overlap
/// their waits — the property the MPSC feed exists to exploit.
class ThrottledSource : public EventSource {
 public:
  ThrottledSource(std::vector<Event> events, DurationUs pause_us)
      : inner_(std::move(events)), pause_us_(pause_us) {}

  bool Next(Event* out) override { return inner_.Next(out); }

  size_t NextBatch(std::vector<Event>* out, size_t max_events) override {
    const size_t n = inner_.NextBatch(out, max_events);
    if (n > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(pause_us_));
    }
    return n;
  }

  void Reset() override { inner_.Reset(); }
  int64_t size_hint() const override { return inner_.size_hint(); }

 private:
  VectorSource inner_;
  DurationUs pause_us_;
};

/// Checksum over first emissions only, the part that is invariant to
/// source interleaving (the workload is built so there are no revisions —
/// this matches ResultChecksum on these streams, but states the contract).
uint64_t FirstEmissionChecksum(const RunReport& report) {
  uint64_t h = 1469598103934665603ull;
  for (const WindowResult& r : report.results) {
    if (r.is_revision) continue;
    h = Fold(h, r.bounds.start);
    h = Fold(h, r.key);
    h = Fold(h, static_cast<int64_t>(r.value * 1e6));
    h = Fold(h, r.tuple_count);
  }
  return h;
}

void MpscSection(TableWriter* table) {
  const std::vector<Event> events = SkewedStream(300000, 0.0, 77);
  constexpr DurationUs kPause = 200;  // Per 256-event batch: feed-bound.
  constexpr size_t kWorkers = 2;

  for (size_t producers : {size_t{1}, size_t{2}, size_t{4}}) {
    // Key-disjoint partitions: every key's events flow through exactly one
    // producer, so first emissions are interleaving-invariant.
    std::vector<std::vector<Event>> parts(producers);
    for (const Event& e : events) {
      parts[ShardedKeyedRunner::ShardOf(e.key, producers)].push_back(e);
    }

    constexpr int kReps = 3;
    double best_wall = 0.0;
    uint64_t checksum = 0;
    int64_t processed = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      std::vector<ThrottledSource> sources;
      sources.reserve(producers);
      for (const std::vector<Event>& part : parts) {
        sources.emplace_back(part, kPause);
      }
      std::vector<EventSource*> ptrs;
      ptrs.reserve(producers);
      for (ThrottledSource& s : sources) ptrs.push_back(&s);

      ParallelOptions options;
      options.batch_size = 256;
      ShardedKeyedRunner runner(KeyedQuery(true), kWorkers, options);
      const RunReport report = runner.RunMultiSource(ptrs);
      if (rep == 0 || report.wall_seconds * 1000.0 < best_wall) {
        best_wall = report.wall_seconds * 1000.0;
      }
      checksum = FirstEmissionChecksum(report);
      processed = report.events_processed;
    }

    char mode[16];
    std::snprintf(mode, sizeof(mode), "p%d", static_cast<int>(producers));
    Row row{.section = "mpsc", .config = "throttled-feed", .mode = mode};
    row.workers = kWorkers;
    row.vshards = kWorkers;
    row.producers = producers;
    row.events = processed;
    row.wall_ms = best_wall;
    row.checksum = checksum;
    EmitRow(table, row);
  }
}

// --------------------------------------------------------------- section=skew

/// Models a slow downstream sink with per-tuple cost: releasing N tuples
/// stalls the WORKER thread ~N * per_tuple_us. Sleeps are accumulated to
/// >= 200us before being paid so OS timer slack stays negligible relative
/// to the modeled latency. Static placement serializes the hot worker's
/// stalls; rebalancing spreads them across workers so they overlap.
class SlowSinkObserver : public PipelineObserver {
 public:
  explicit SlowSinkObserver(DurationUs per_tuple_us)
      : per_tuple_us_(per_tuple_us) {}
  void OnHandlerRelease(int64_t released, size_t buffered_after,
                        TimestampUs watermark) override {
    (void)buffered_after;
    (void)watermark;
    if (per_tuple_us_ == 0 || released <= 0) return;
    thread_local DurationUs pending = 0;  // Workers are per-run threads, so
                                          // no debt leaks across runs.
    pending += released * per_tuple_us_;
    if (pending >= 200) {
      std::this_thread::sleep_for(std::chrono::microseconds(pending));
      pending = 0;
    }
  }

 private:
  DurationUs per_tuple_us_;
};

/// The adversarial placement case: four hot keys (~15% of the stream each)
/// whose shards — 0, 4, 8, 12 of 16 — ALL land on worker 0 under the
/// static placement[v] = v % 4, plus twelve cold keys spread over the
/// other workers' shards. Static placement funnels ~60% of the stream
/// through one worker; the rebalancer can cut that to ~one hot shard per
/// worker. Built by remapping a uniform 64-key stream, keeping timestamps
/// and bounded delays (so nothing is late and outputs stay comparable).
std::vector<Event> ColocatedSkewStream(int64_t n, uint64_t seed) {
  std::vector<Event> events = SkewedStream(n, /*zipf_s=*/0.0, seed);
  constexpr size_t kShards = 16;
  constexpr size_t kWorkers = 4;
  std::vector<int64_t> hot_key_for_shard(kShards, -1);
  std::vector<int64_t> cold_keys;
  size_t hot_found = 0;
  for (int64_t key = 0; hot_found < kWorkers || cold_keys.size() < 12;
       ++key) {
    const size_t shard = ShardedKeyedRunner::ShardOf(key, kShards);
    if (shard % kWorkers == 0) {
      if (hot_key_for_shard[shard] < 0) {
        hot_key_for_shard[shard] = key;
        ++hot_found;
      }
    } else if (cold_keys.size() < 12) {
      cold_keys.push_back(key);
    }
  }
  const int64_t hot_keys[] = {hot_key_for_shard[0], hot_key_for_shard[4],
                              hot_key_for_shard[8], hot_key_for_shard[12]};
  for (Event& e : events) {
    const int64_t k = e.key;  // Uniform in [0, 64).
    e.key = k < 38 ? hot_keys[k % 4]
                   : cold_keys[static_cast<size_t>(k - 38) % cold_keys.size()];
  }
  return events;
}

void SkewSection(TableWriter* table) {
  const std::vector<Event> events = ColocatedSkewStream(60000, 99);
  constexpr size_t kWorkers = 4;
  ParallelOptions static_opts;
  static_opts.batch_size = 64;
  static_opts.virtual_shards = 16;
  ParallelOptions rebalance_opts = static_opts;
  rebalance_opts.rebalance = true;
  rebalance_opts.rebalance_interval_batches = 16;
  rebalance_opts.rebalance_threshold = 1.2;

  struct Config {
    const char* name;
    DurationUs per_tuple_us;
    int reps;
  };
  for (const Config& config : {Config{"sink-latency", 20, 2},
                               Config{"pure-cpu", 0, 3}}) {
    SlowSinkObserver observer(config.per_tuple_us);
    PipelineObserver* obs = config.per_tuple_us > 0 ? &observer : nullptr;
    KeyedOutcome best_static, best_rebalance;
    for (int rep = 0; rep < config.reps; ++rep) {
      const KeyedOutcome s =
          RunKeyed(events, kWorkers, static_opts, true, obs);
      const KeyedOutcome r =
          RunKeyed(events, kWorkers, rebalance_opts, true, obs);
      if (rep == 0 || s.wall_ms < best_static.wall_ms) best_static = s;
      if (rep == 0 || r.wall_ms < best_rebalance.wall_ms) best_rebalance = r;
    }
    struct Labeled {
      const char* mode;
      KeyedOutcome out;
    };
    for (const Labeled& l : {Labeled{"static", best_static},
                             Labeled{"rebalance", best_rebalance}}) {
      Row row{.section = "skew", .config = config.name, .mode = l.mode};
      row.workers = kWorkers;
      row.vshards = 16;
      row.producers = 1;
      row.events = static_cast<int64_t>(events.size());
      row.wall_ms = l.out.wall_ms;
      row.migrations = l.out.migrations;
      row.max_share = l.out.max_share;
      row.checksum = l.out.checksum;
      EmitRow(table, row);
    }
  }
}

void Run() {
  TableWriter table(
      "R-F21: extreme-scale runtime — arena feed memory, MPSC ingestion "
      "scaling, skew-aware rebalancing",
      {"section", "config", "mode", "workers", "vshards", "producers",
       "events", "wall_ms", "keps", "migrations", "max_share", "checksum"});
  FeedSection(&table);
  PipelineSection(&table);
  MpscSection(&table);
  SkewSection(&table);
  EmitTable(table, "f21_runtime.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
