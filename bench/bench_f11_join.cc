/// R-F11 (extension) — Quality-driven execution for windowed stream joins.
///
/// Join recall composes multiplicatively from per-side coverage (a pair is
/// found only if *both* tuples survive their buffers), which makes the join
/// the most quality-sensitive operator in the engine. This experiment
/// sweeps per-side strategies and reports pair recall, buffering latency
/// and state size. Reproduced shape: recall ~ coverage^2 for fixed K;
/// quality-driven sides hit a recall target with per-side targets of
/// sqrt(recall*); worst-case buffering pays multiples of latency for the
/// last fraction of a percent.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "core/stream_join.h"

namespace streamq {
namespace bench {
namespace {

GeneratedWorkload Side(uint64_t seed, int64_t n) {
  WorkloadConfig cfg = BaseConfig(n);
  cfg.events_per_second = 5000.0;
  cfg.num_keys = 64;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 15000.0;
  cfg.seed = seed;
  return GenerateWorkload(cfg);
}

void FeedMerged(WindowedStreamJoin* join, const std::vector<Event>& left,
                const std::vector<Event>& right) {
  size_t li = 0, ri = 0;
  while (li < left.size() || ri < right.size()) {
    const bool take_left =
        ri >= right.size() ||
        (li < left.size() && left[li].arrival_time <= right[ri].arrival_time);
    if (take_left) {
      join->FeedLeft(left[li++]);
    } else {
      join->FeedRight(right[ri++]);
    }
  }
  join->Finish();
}

void Run() {
  const auto l = Side(101, 40000);
  const auto r = Side(202, 40000);
  const DurationUs join_window = Millis(5);
  const int64_t truth =
      OracleJoinCount(l.arrival_order, r.arrival_order, join_window);
  std::cout << "oracle pairs: " << truth << "\n\n";

  TableWriter table(
      "R-F11: windowed stream join (|dt|<=5ms, 64 keys) per strategy",
      {"strategy", "pair_recall", "left_coverage", "buf_latency_mean_ms",
       "max_store_tuples"});

  struct Case {
    std::string name;
    DisorderHandlerSpec spec;
  };
  std::vector<Case> cases;
  for (DurationUs k : {Millis(5), Millis(15), Millis(40)}) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "fixed-K(%lldms)",
                  static_cast<long long>(k / 1000));
    cases.push_back({buf, DisorderHandlerSpec::Fixed(k)});
  }
  for (double recall_target : {0.80, 0.90, 0.95}) {
    AqKSlack::Options aq;
    aq.target_quality = std::sqrt(recall_target);  // Per-side target.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "aq(recall*=%.2f)", recall_target);
    cases.push_back({buf, DisorderHandlerSpec::Aq(aq)});
  }
  cases.push_back({"mp-kslack", DisorderHandlerSpec::Mp({})});

  for (const Case& c : cases) {
    WindowedStreamJoin::Options options;
    options.join_window = join_window;
    options.left_handler = c.spec;
    options.right_handler = c.spec;
    CountingJoinSink sink;
    WindowedStreamJoin join(options, &sink);
    FeedMerged(&join, l.arrival_order, r.arrival_order);

    const auto& ls = join.left_handler().stats();
    table.BeginRow();
    table.Cell(c.name);
    table.Cell(static_cast<double>(sink.pairs) / static_cast<double>(truth),
               4);
    table.Cell(1.0 - static_cast<double>(ls.events_late) /
                         static_cast<double>(ls.events_in),
               4);
    table.Cell(ls.buffering_latency_us.mean() / 1000.0, 3);
    table.Cell(join.stats().max_store_size);
  }
  EmitTable(table, "f11_join.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
