/// R-T2 — Aggregate functions and their sensitivity to missing tuples.
///
/// For each supported aggregate: the empirically fitted quality exponent
/// gamma (quality ~ coverage^gamma), the library's default gamma, and the
/// value quality measured at two fixed coverage levels. Shows why the
/// quality-driven buffer must be aggregate-aware: at 80% coverage a `max`
/// answer is still ~95% right while a `sum` answer is ~80% right.

#include <iostream>

#include "bench/bench_util.h"
#include "quality/value_error_model.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  WorkloadConfig cfg = BaseConfig(30000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const WindowSpec window = WindowSpec::Tumbling(Millis(50));

  GammaFitOptions fit_options;
  fit_options.coverage_grid = {0.5, 0.7, 0.8, 0.9, 0.95};
  fit_options.trials = 3;

  TableWriter table(
      "R-T2: per-aggregate quality sensitivity (quality ~ coverage^gamma)",
      {"aggregate", "fitted_gamma", "default_gamma", "q@cov=0.8", "q@cov=0.95",
       "fit_rms"});

  const AggKind kinds[] = {AggKind::kCount,   AggKind::kSum,
                           AggKind::kMean,    AggKind::kMin,
                           AggKind::kMax,     AggKind::kStdDev,
                           AggKind::kMedian,  AggKind::kQuantile,
                           AggKind::kDistinctCount};
  for (AggKind kind : kinds) {
    AggregateSpec spec;
    spec.kind = kind;
    spec.quantile_q = 0.9;
    const GammaFit fit =
        FitQualityGamma(w.arrival_order, window, spec, fit_options);
    double q80 = 0.0, q95 = 0.0;
    for (const CoverageQualityPoint& p : fit.curve) {
      if (p.coverage == 0.8) q80 = p.mean_quality;
      if (p.coverage == 0.95) q95 = p.mean_quality;
    }
    table.BeginRow();
    table.Cell(spec.Describe());
    table.Cell(fit.gamma, 3);
    table.Cell(DefaultQualityGamma(kind), 2);
    table.Cell(q80, 4);
    table.Cell(q95, 4);
    table.Cell(fit.rms_residual, 4);
  }
  EmitTable(table, "t2_aggregates.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
