/// R-F20 — Bounded-memory graceful degradation: what the buffer cap costs
/// when idle, and what it buys when it binds.
///
/// Three sections in one table (CSV: bench_results/f20_degradation.csv):
///
///   * section=overhead — the cap's hot-path tax. The same mildly
///     disordered 1M-tuple stream runs uncapped and with a cap so large it
///     never binds (identical output, checksum-verified). Runs are
///     interleaved and the min over repetitions is reported, so the pair is
///     directly comparable; the CI gate holds the never-binding cap to
///     <= 2% over uncapped.
///
///   * section=shed — a deep-buffer stream (1s slack, ~10k tuples in
///     flight, injector-style disorder bursts) against a cap of 4096 under
///     each shed policy, plus the uncapped reference. Shows the per-tuple
///     cost and the loss accounting (out/late/shed/forced) of each policy
///     at a hard-binding cap.
///
///   * section=curve — the memory/quality trade-off: the same stream under
///     kEmitEarly across a cap sweep (uncapped, 16384 ... 256). Occupancy
///     must track the cap exactly; lateness grows as the cap tightens.
///
/// Every capped row's max_buffer <= cap is a hard CI gate
/// (tools/check_bench_regression.py, f20 suite).

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "disorder/handler_factory.h"
#include "stream/event.h"

namespace streamq {
namespace bench {
namespace {

/// Order-sensitive FNV-style fold over released tuples (same as R-F19):
/// identical sequences, identical checksums.
uint64_t FoldChecksum(uint64_t h, const Event& e) {
  h ^= static_cast<uint64_t>(e.id);
  h *= 0x100000001B3ull;
  h ^= static_cast<uint64_t>(e.event_time);
  h *= 0x100000001B3ull;
  return h;
}

struct ChecksumSink : EventSink {
  void OnEvent(const Event& e) override { checksum = FoldChecksum(checksum, e); }
  void OnEvents(std::span<const Event> events) override {
    for (const Event& e : events) checksum = FoldChecksum(checksum, e);
  }
  void OnWatermark(TimestampUs, TimestampUs) override {}
  void OnLateEvent(const Event&) override {}
  uint64_t checksum = 0;
};

/// 100us cadence, uniform delay in [0, max_delay]; every `burst_every`
/// tuples a burst of `burst_len` lands at one arrival instant with event
/// times pushed back up to `burst_spread` — the injector's disorder-spike
/// fault, synthesized directly so streams are cheap to regenerate.
std::vector<Event> DisorderStream(size_t n, DurationUs max_delay,
                                  size_t burst_every, size_t burst_len,
                                  DurationUs burst_spread) {
  Rng rng(4242);
  std::vector<Event> events;
  events.reserve(n);
  size_t burst_remaining = 0;
  TimestampUs burst_start = 0;
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = static_cast<int64_t>(i);
    e.arrival_time = static_cast<TimestampUs>(i) * 100;
    e.event_time = e.arrival_time - rng.NextInt(0, max_delay);
    if (burst_every != 0 && burst_remaining == 0 && i > 0 &&
        i % burst_every == 0) {
      burst_remaining = burst_len;
      burst_start = e.arrival_time;
    }
    if (burst_remaining > 0) {
      --burst_remaining;
      e.arrival_time = burst_start;
      e.event_time = burst_start - rng.NextInt(0, burst_spread);
    }
    if (e.event_time < 0) e.event_time = 0;
    e.value = 1.0;
    events.push_back(e);
  }
  return events;
}

struct RunOutcome {
  double ns_per_tuple = 0.0;
  int64_t max_buffer = 0;
  int64_t out = 0;
  int64_t late = 0;
  int64_t shed = 0;
  int64_t forced = 0;
  uint64_t checksum = 0;
};

/// One timed pass: OnBatch chunks of 256 (the executor's hot path), Flush
/// outside the timer but inside the checksum.
RunOutcome RunOnce(const DisorderHandlerSpec& spec,
                   const std::vector<Event>& events) {
  std::unique_ptr<DisorderHandler> handler =
      MakeDisorderHandlerOrDie(spec.WithLatencySamples(false));
  ChecksumSink sink;
  const std::span<const Event> stream(events);
  constexpr size_t kBatch = 256;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < stream.size(); i += kBatch) {
    handler->OnBatch(stream.subspan(i, std::min(kBatch, stream.size() - i)),
                     &sink);
  }
  const auto t1 = std::chrono::steady_clock::now();
  handler->Flush(&sink);
  const DisorderHandlerStats& hs = handler->stats();
  RunOutcome out;
  out.ns_per_tuple =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(events.size());
  out.max_buffer = hs.max_buffer_size;
  out.out = hs.events_out;
  out.late = hs.events_late;
  out.shed = hs.events_shed;
  out.forced = hs.events_force_released;
  out.checksum = sink.checksum;
  return out;
}

void EmitRow(TableWriter* table, const char* section, const char* config,
             const char* policy, size_t cap, const RunOutcome& r) {
  table->BeginRow();
  table->Cell(section);
  table->Cell(config);
  table->Cell(policy);
  table->Cell(cap);
  table->Cell(r.ns_per_tuple, 2);
  table->Cell(1e6 / r.ns_per_tuple, 1);
  table->Cell(r.max_buffer);
  table->Cell(r.out);
  table->Cell(r.late);
  table->Cell(r.shed);
  table->Cell(r.forced);
  table->Cell(static_cast<int64_t>(r.checksum));
}

const char* PolicyLabel(ShedPolicy policy) { return ShedPolicyName(policy); }

void Run() {
  TableWriter table(
      "R-F20: bounded-memory degradation — cap overhead, shed policies, "
      "memory/quality curve",
      {"section", "config", "policy", "cap", "ns_per_tuple", "ktuples_per_s",
       "max_buffer", "out", "late", "shed", "forced", "checksum"});

  // --- overhead: uncapped vs never-binding cap, interleaved min-of-N ----
  {
    const std::vector<Event> mild =
        DisorderStream(1000000, Millis(15), 0, 0, 0);
    const DisorderHandlerSpec uncapped = DisorderHandlerSpec::Fixed(Millis(30));
    const DisorderHandlerSpec capped =
        uncapped.WithBufferCap(1u << 20, ShedPolicy::kEmitEarly);
    constexpr int kReps = 7;
    RunOutcome best_uncapped, best_capped;
    for (int rep = 0; rep < kReps; ++rep) {
      const RunOutcome u = RunOnce(uncapped, mild);
      const RunOutcome c = RunOnce(capped, mild);
      if (rep == 0 || u.ns_per_tuple < best_uncapped.ns_per_tuple) {
        best_uncapped = u;
      }
      if (rep == 0 || c.ns_per_tuple < best_capped.ns_per_tuple) {
        best_capped = c;
      }
    }
    EmitRow(&table, "overhead", "fixed30ms-mild", "uncapped", 0,
            best_uncapped);
    EmitRow(&table, "overhead", "fixed30ms-mild", "emit-early", 1u << 20,
            best_capped);
  }

  // --- shed: hard-binding cap under each policy -------------------------
  // 1s slack holds ~10k tuples in flight at 10k events/s; bursts of 8192
  // spike it further. Cap 4096 binds for the whole steady state.
  const std::vector<Event> deep =
      DisorderStream(1000000, Millis(100), 50000, 8192, Millis(500));
  const DisorderHandlerSpec deep_spec = DisorderHandlerSpec::Fixed(Seconds(1));
  constexpr size_t kShedCap = 4096;
  EmitRow(&table, "shed", "fixed1s-burst", "uncapped", 0,
          RunOnce(deep_spec, deep));
  for (ShedPolicy policy :
       {ShedPolicy::kEmitEarly, ShedPolicy::kDropNewest,
        ShedPolicy::kDropOldest}) {
    EmitRow(&table, "shed", "fixed1s-burst", PolicyLabel(policy), kShedCap,
            RunOnce(deep_spec.WithBufferCap(kShedCap, policy), deep));
  }

  // --- curve: memory bound vs quality loss (kEmitEarly) -----------------
  for (size_t cap : {size_t{0}, size_t{16384}, size_t{4096}, size_t{1024},
                     size_t{256}}) {
    EmitRow(&table, "curve", "fixed1s-burst",
            cap == 0 ? "uncapped" : "emit-early", cap,
            RunOnce(cap == 0
                        ? deep_spec
                        : deep_spec.WithBufferCap(cap, ShedPolicy::kEmitEarly),
                    deep));
  }

  EmitTable(table, "f20_degradation.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
