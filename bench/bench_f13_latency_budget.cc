/// R-F13 (extension) — The dual contract: latency-budgeted buffering.
///
/// LbKSlack is given a mean buffering-latency budget and must maximize
/// quality. Sweeps budgets on a stationary and a step workload. Reproduced
/// shape: measured latency pins to the budget (the regulation property);
/// quality rises with budget along the same trade-off curve that fixed-K
/// traces from the other axis; under the step the controller re-pins
/// latency while quality absorbs the regime change.

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  WindowedAggregation::Options wopts;
  wopts.window = WindowSpec::Tumbling(Millis(50));
  wopts.aggregate.kind = AggKind::kSum;

  TableWriter table(
      "R-F13: latency-budgeted buffering (LbKSlack): quality bought per ms",
      {"workload", "budget_ms", "measured_latency_ms", "value_quality",
       "coverage"});

  for (const NamedWorkload& nw : StandardWorkloads(80000)) {
    if (nw.name != "exp-20ms" && nw.name != "step-x5") continue;
    const GeneratedWorkload w = GenerateWorkload(nw.config);
    const OracleEvaluator oracle(w.arrival_order, wopts.window,
                                 wopts.aggregate);
    for (DurationUs budget :
         {Millis(2), Millis(5), Millis(10), Millis(20), Millis(40),
          Millis(80)}) {
      LbKSlack::Options options;
      options.latency_budget = budget;
      ContinuousQuery q;
      q.name = "f13";
      q.handler = DisorderHandlerSpec::Lb(options);
      q.window = wopts;
      const ScoredRun r = RunScored(q, w, oracle);
      table.BeginRow();
      table.Cell(nw.name);
      table.Cell(ToMillis(budget), 0);
      table.Cell(r.report.handler_stats.buffering_latency_us.mean() / 1000.0,
                 3);
      table.Cell(r.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(r.quality.coverage.mean, 4);
    }
  }
  EmitTable(table, "f13_latency_budget.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
