/// Component microbenchmarks (google-benchmark): the per-tuple costs that
/// determine engine throughput — buffer operations, the lateness sketch,
/// the control step, window assignment and aggregate updates.

#include <benchmark/benchmark.h>

#include <vector>

#include "agg/aggregate.h"
#include "common/rng.h"
#include "common/stats.h"
#include "control/pi_controller.h"
#include "disorder/reorder_buffer.h"
#include "window/window.h"

namespace streamq {
namespace {

void BM_ReorderBufferPushPop(benchmark::State& state) {
  const int64_t buffered = state.range(0);
  Rng rng(1);
  std::vector<Event> events(static_cast<size_t>(buffered) + 1024);
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].id = static_cast<int64_t>(i);
    events[i].event_time = rng.NextInt(0, 1 << 20);
  }
  ReorderBuffer buf;
  size_t next = 0;
  for (int64_t i = 0; i < buffered; ++i) buf.Push(events[next++]);
  Event out;
  for (auto _ : state) {
    // Steady state: one push + one pop at constant occupancy.
    buf.Push(events[next % events.size()]);
    ++next;
    buf.PopMin(&out);
    benchmark::DoNotOptimize(out.event_time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReorderBufferPushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SlidingSketchAdd(benchmark::State& state) {
  SlidingWindowQuantile sketch(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    sketch.Add(rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingSketchAdd)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SlidingSketchQuantile(benchmark::State& state) {
  SlidingWindowQuantile sketch(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) sketch.Add(rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Quantile(0.95));
  }
}
BENCHMARK(BM_SlidingSketchQuantile)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_P2QuantileAdd(benchmark::State& state) {
  P2Quantile est(0.95);
  Rng rng(4);
  for (auto _ : state) {
    est.Add(rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_P2QuantileAdd);

void BM_PiControllerUpdate(benchmark::State& state) {
  PiController pi(PiController::Options{});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pi.Update(rng.NextDouble() - 0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiControllerUpdate);

void BM_AssignWindowsSliding(benchmark::State& state) {
  const WindowSpec spec =
      WindowSpec::Sliding(Millis(50) * state.range(0), Millis(50));
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AssignWindows(spec, rng.NextInt(0, Seconds(100))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AssignWindowsSliding)->Arg(1)->Arg(4)->Arg(16);

void BM_AggregatorAdd(benchmark::State& state) {
  AggregateSpec spec;
  spec.kind = static_cast<AggKind>(state.range(0));
  auto agg = MakeAggregator(spec);
  Rng rng(7);
  for (auto _ : state) {
    agg->Add(rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(spec.Describe());
}
BENCHMARK(BM_AggregatorAdd)
    ->Arg(static_cast<int>(AggKind::kSum))
    ->Arg(static_cast<int>(AggKind::kMean))
    ->Arg(static_cast<int>(AggKind::kMax))
    ->Arg(static_cast<int>(AggKind::kMedian));

}  // namespace
}  // namespace streamq

BENCHMARK_MAIN();
