/// R-F9 — Operator throughput (google-benchmark).
///
/// Per-handler processing rate on a pre-generated 200k-tuple stream, with
/// and without the downstream window operator. Reproduced shape: all
/// buffering handlers sit within a small factor of pass-through; the
/// quality-control loop adds only a small overhead on top of fixed K-slack
/// (its work is O(1) amortized per tuple plus a quantile query per
/// adaptation interval).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "disorder/event_sink.h"
#include "window/paned_window_operator.h"

namespace streamq {
namespace bench {
namespace {

const GeneratedWorkload& Workload() {
  static const GeneratedWorkload* w = [] {
    WorkloadConfig cfg = BaseConfig(200000);
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;
    return new GeneratedWorkload(GenerateWorkload(cfg));
  }();
  return *w;
}

DisorderHandlerSpec SpecFor(int which) {
  switch (which) {
    case 0:
      return DisorderHandlerSpec::PassThroughSpec();
    case 1:
      return DisorderHandlerSpec::FixedK(Millis(30));
    case 2: {
      MpKSlack::Options mp;
      return DisorderHandlerSpec::Mp(mp);
    }
    case 3: {
      AqKSlack::Options aq;
      aq.target_quality = 0.95;
      return DisorderHandlerSpec::Aq(aq);
    }
    default: {
      WatermarkReorderer::Options wm;
      wm.bound = Millis(30);
      wm.period_events = 32;
      return DisorderHandlerSpec::Watermark(wm);
    }
  }
}

const char* NameFor(int which) {
  switch (which) {
    case 0:
      return "pass-through";
    case 1:
      return "fixed-kslack";
    case 2:
      return "mp-kslack";
    case 3:
      return "aq-kslack";
    default:
      return "watermark";
  }
}

/// Handler alone, results discarded (isolates the disorder-handling cost).
void BM_HandlerOnly(benchmark::State& state) {
  const auto& w = Workload();
  for (auto _ : state) {
    auto handler =
        MakeDisorderHandler(SpecFor(static_cast<int>(state.range(0))));
    CountingSink sink;
    for (const Event& e : w.arrival_order) handler->OnEvent(e, &sink);
    handler->Flush(&sink);
    benchmark::DoNotOptimize(sink.checksum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
  state.SetLabel(NameFor(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_HandlerOnly)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Full pipeline: handler + windowed aggregation.
void BM_FullPipeline(benchmark::State& state) {
  const auto& w = Workload();
  for (auto _ : state) {
    ContinuousQuery q;
    q.name = "bench";
    q.handler = SpecFor(static_cast<int>(state.range(0)));
    q.window.window = WindowSpec::Tumbling(Millis(50));
    q.window.aggregate.kind = AggKind::kSum;
    QueryExecutor exec(q);
    for (const Event& e : w.arrival_order) exec.Feed(e);
    exec.Finish();
    benchmark::DoNotOptimize(exec.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
  state.SetLabel(NameFor(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Sliding windows multiply per-tuple work by size/slide; measure scaling.
void BM_SlidingWindowFanout(benchmark::State& state) {
  const auto& w = Workload();
  const int64_t fanout = state.range(0);
  for (auto _ : state) {
    ContinuousQuery q;
    q.name = "bench";
    q.handler = DisorderHandlerSpec::FixedK(Millis(30));
    q.window.window =
        WindowSpec::Sliding(Millis(50) * fanout, Millis(50));
    q.window.aggregate.kind = AggKind::kSum;
    QueryExecutor exec(q);
    for (const Event& e : w.arrival_order) exec.Feed(e);
    exec.Finish();
    benchmark::DoNotOptimize(exec.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
}
BENCHMARK(BM_SlidingWindowFanout)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// R-F14: the pane optimization — same query shape as above, but tuples
/// fold into one pane instead of size/slide windows. Compare against
/// BM_SlidingWindowFanout at equal fanout.
void BM_PanedSlidingWindowFanout(benchmark::State& state) {
  const auto& w = Workload();
  const int64_t fanout = state.range(0);
  for (auto _ : state) {
    auto handler = MakeDisorderHandler(DisorderHandlerSpec::FixedK(Millis(30)));
    PanedWindowedAggregation::Options options;
    options.window = WindowSpec::Sliding(Millis(50) * fanout, Millis(50));
    options.aggregate.kind = AggKind::kSum;
    CollectingResultSink results;
    PanedWindowedAggregation op(options, &results);
    for (const Event& e : w.arrival_order) handler->OnEvent(e, &op);
    handler->Flush(&op);
    benchmark::DoNotOptimize(results.results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
}
BENCHMARK(BM_PanedSlidingWindowFanout)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streamq

BENCHMARK_MAIN();
