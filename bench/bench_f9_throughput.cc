/// R-F9 — Operator throughput (google-benchmark).
///
/// Per-handler processing rate on a pre-generated 200k-tuple stream, with
/// and without the downstream window operator. Reproduced shape: all
/// buffering handlers sit within a small factor of pass-through; the
/// quality-control loop adds only a small overhead on top of fixed K-slack
/// (its work is O(1) amortized per tuple plus a quantile query per
/// adaptation interval).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <span>

#include "bench/bench_util.h"
#include "core/multi_query.h"
#include "core/parallel_runner.h"
#include "disorder/event_sink.h"
#include "window/paned_window_operator.h"

namespace streamq {
namespace bench {
namespace {

const GeneratedWorkload& Workload() {
  static const GeneratedWorkload* w = [] {
    WorkloadConfig cfg = BaseConfig(200000);
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;
    return new GeneratedWorkload(GenerateWorkload(cfg));
  }();
  return *w;
}

DisorderHandlerSpec SpecFor(int which) {
  DisorderHandlerSpec s;
  switch (which) {
    case 0:
      s = DisorderHandlerSpec::PassThrough();
      break;
    case 1:
      s = DisorderHandlerSpec::Fixed(Millis(30));
      break;
    case 2: {
      MpKSlack::Options mp;
      s = DisorderHandlerSpec::Mp(mp);
      break;
    }
    case 3: {
      AqKSlack::Options aq;
      aq.target_quality = 0.95;
      s = DisorderHandlerSpec::Aq(aq);
      break;
    }
    default: {
      WatermarkReorderer::Options wm;
      wm.bound = Millis(30);
      wm.period_events = 32;
      s = DisorderHandlerSpec::Watermark(wm);
      break;
    }
  }
  // Throughput runs measure the hot path, not percentile bookkeeping.
  return s.WithLatencySamples(false);
}

const char* NameFor(int which) {
  switch (which) {
    case 0:
      return "pass-through";
    case 1:
      return "fixed-kslack";
    case 2:
      return "mp-kslack";
    case 3:
      return "aq-kslack";
    default:
      return "watermark";
  }
}

/// Handler alone, results discarded (isolates the disorder-handling cost).
void BM_HandlerOnly(benchmark::State& state) {
  const auto& w = Workload();
  for (auto _ : state) {
    auto handler =
        MakeDisorderHandlerOrDie(SpecFor(static_cast<int>(state.range(0))));
    CountingSink sink;
    for (const Event& e : w.arrival_order) handler->OnEvent(e, &sink);
    handler->Flush(&sink);
    benchmark::DoNotOptimize(sink.checksum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
  state.SetLabel(NameFor(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_HandlerOnly)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Full pipeline: handler + windowed aggregation.
void BM_FullPipeline(benchmark::State& state) {
  const auto& w = Workload();
  for (auto _ : state) {
    ContinuousQuery q;
    q.name = "bench";
    q.handler = SpecFor(static_cast<int>(state.range(0)));
    q.window.window = WindowSpec::Tumbling(Millis(50));
    q.window.aggregate.kind = AggKind::kSum;
    QueryExecutor exec(q);
    for (const Event& e : w.arrival_order) exec.Feed(e);
    exec.Finish();
    benchmark::DoNotOptimize(exec.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
  state.SetLabel(NameFor(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Sliding windows multiply per-tuple work by size/slide; measure scaling.
void BM_SlidingWindowFanout(benchmark::State& state) {
  const auto& w = Workload();
  const int64_t fanout = state.range(0);
  for (auto _ : state) {
    ContinuousQuery q;
    q.name = "bench";
    q.handler = DisorderHandlerSpec::Fixed(Millis(30));
    q.window.window =
        WindowSpec::Sliding(Millis(50) * fanout, Millis(50));
    q.window.aggregate.kind = AggKind::kSum;
    QueryExecutor exec(q);
    for (const Event& e : w.arrival_order) exec.Feed(e);
    exec.Finish();
    benchmark::DoNotOptimize(exec.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
}
BENCHMARK(BM_SlidingWindowFanout)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// 1M-tuple workload for the batch-size sweep (big enough that steady-state
/// per-tuple cost dominates setup).
const GeneratedWorkload& BigWorkload() {
  static const GeneratedWorkload* w = [] {
    WorkloadConfig cfg = BaseConfig(1000000);
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;
    return new GeneratedWorkload(GenerateWorkload(cfg));
  }();
  return *w;
}

/// Batched hot path: the full pipeline fed through FeedBatch in chunks of
/// range(1) events. batch=1 is the per-tuple dispatch cost floor; larger
/// batches amortize virtual dispatch and buffer churn. Output is identical
/// across batch sizes (OnBatch contract), so this isolates mechanics.
void BM_FullPipelineBatchSweep(benchmark::State& state) {
  const auto& w = BigWorkload();
  const size_t batch = static_cast<size_t>(state.range(1));
  const std::span<const Event> events(w.arrival_order);
  for (auto _ : state) {
    ContinuousQuery q;
    q.name = "bench";
    q.handler = SpecFor(static_cast<int>(state.range(0)));
    q.window.window = WindowSpec::Tumbling(Millis(50));
    q.window.aggregate.kind = AggKind::kSum;
    QueryExecutor exec(q);
    for (size_t i = 0; i < events.size(); i += batch) {
      exec.FeedBatch(events.subspan(i, std::min(batch, events.size() - i)));
    }
    exec.Finish();
    benchmark::DoNotOptimize(exec.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.SetLabel(NameFor(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FullPipelineBatchSweep)
    ->ArgsProduct({{1, 3}, {1, 16, 256, 4096}})
    ->Unit(benchmark::kMillisecond);

/// Thread scaling: N identical independent queries over one stream,
/// sequential (shared feed loop) vs one worker thread per query. Equal
/// work per configuration, so wall-time ratio is the parallel speedup.
void BM_MultiQuerySequential(benchmark::State& state) {
  const auto& w = Workload();
  const int num_queries = static_cast<int>(state.range(0));
  VectorSource source(w.arrival_order);
  for (auto _ : state) {
    MultiQueryRunner runner(MultiQueryRunner::Plan::kIndependent);
    for (int i = 0; i < num_queries; ++i) {
      ContinuousQuery q;
      q.name = "bench";
      q.handler = SpecFor(3);
      q.window.window = WindowSpec::Tumbling(Millis(50));
      q.window.aggregate.kind = AggKind::kSum;
      runner.AddQuery(q);
    }
    source.Reset();
    const auto reports = runner.Run(&source);
    benchmark::DoNotOptimize(reports.size());
  }
  state.SetItemsProcessed(state.iterations() * num_queries *
                          static_cast<int64_t>(w.arrival_order.size()));
}
BENCHMARK(BM_MultiQuerySequential)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MultiQueryParallel(benchmark::State& state) {
  const auto& w = Workload();
  const int num_queries = static_cast<int>(state.range(0));
  VectorSource source(w.arrival_order);
  for (auto _ : state) {
    ParallelMultiQueryRunner runner;
    for (int i = 0; i < num_queries; ++i) {
      ContinuousQuery q;
      q.name = "bench";
      q.handler = SpecFor(3);
      q.window.window = WindowSpec::Tumbling(Millis(50));
      q.window.aggregate.kind = AggKind::kSum;
      runner.AddQuery(q);
    }
    source.Reset();
    const auto reports = runner.Run(&source);
    benchmark::DoNotOptimize(reports.size());
  }
  state.SetItemsProcessed(state.iterations() * num_queries *
                          static_cast<int64_t>(w.arrival_order.size()));
}
BENCHMARK(BM_MultiQueryParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// R-F14: the pane optimization — same query shape as above, but tuples
/// fold into one pane instead of size/slide windows. Compare against
/// BM_SlidingWindowFanout at equal fanout.
void BM_PanedSlidingWindowFanout(benchmark::State& state) {
  const auto& w = Workload();
  const int64_t fanout = state.range(0);
  for (auto _ : state) {
    auto handler = MakeDisorderHandlerOrDie(DisorderHandlerSpec::Fixed(Millis(30)));
    PanedWindowedAggregation::Options options;
    options.window = WindowSpec::Sliding(Millis(50) * fanout, Millis(50));
    options.aggregate.kind = AggKind::kSum;
    CollectingResultSink results;
    PanedWindowedAggregation op(options, &results);
    for (const Event& e : w.arrival_order) handler->OnEvent(e, &op);
    handler->Flush(&op);
    benchmark::DoNotOptimize(results.results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.arrival_order.size()));
}
BENCHMARK(BM_PanedSlidingWindowFanout)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace streamq

BENCHMARK_MAIN();
