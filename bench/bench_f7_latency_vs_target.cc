/// R-F7 — Buffering latency as a function of the quality target:
/// AQ-K-slack vs an offline-oracle-tuned fixed K vs MP-K-slack.
///
/// The paper-family headline: at equal delivered quality, the
/// quality-driven operator's latency is close to the best static
/// configuration chosen with hindsight (which no online system has) and far
/// below the disorder-bound tracker — especially on heavy tails and under
/// non-stationarity, where a single static K cannot be right everywhere.

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  const int64_t kNumEvents = 80000;
  WindowedAggregation::Options wopts;
  wopts.window = WindowSpec::Tumbling(Millis(50));
  wopts.aggregate.kind = AggKind::kSum;

  TableWriter table(
      "R-F7: buffering latency (mean ms) at equal quality target",
      {"workload", "target", "aq_latency", "aq_quality", "oracle_fixed_K_ms",
       "fixedK_latency", "fixedK_quality", "mp_latency", "mp_quality",
       "aq_vs_mp_speedup"});

  for (const NamedWorkload& nw : StandardWorkloads(kNumEvents)) {
    // One stationary light tail, one heavy tail, one non-stationary.
    if (nw.name != "exp-20ms" && nw.name != "pareto-heavy" &&
        nw.name != "step-x5") {
      continue;
    }
    const GeneratedWorkload w = GenerateWorkload(nw.config);
    const OracleEvaluator oracle(w.arrival_order, wopts.window,
                                 wopts.aggregate);

    for (double target : {0.85, 0.90, 0.95, 0.99}) {
      // AQ-K-slack.
      AqKSlack::Options aq;
      aq.target_quality = target;
      ContinuousQuery q_aq;
      q_aq.name = "aq";
      q_aq.handler = DisorderHandlerSpec::Aq(aq);
      q_aq.window = wopts;
      const ScoredRun r_aq = RunScored(q_aq, w, oracle);

      // Offline-tuned fixed K for this exact workload & target.
      const DurationUs k_star = OracleTunedFixedK(w, oracle, wopts, target);
      ContinuousQuery q_fixed;
      q_fixed.name = "fixed";
      q_fixed.handler = DisorderHandlerSpec::Fixed(k_star);
      q_fixed.window = wopts;
      const ScoredRun r_fixed = RunScored(q_fixed, w, oracle);

      // MP-K-slack (quality target ignored: it cannot accept one).
      ContinuousQuery q_mp;
      q_mp.name = "mp";
      q_mp.handler = DisorderHandlerSpec::Mp({});
      q_mp.window = wopts;
      const ScoredRun r_mp = RunScored(q_mp, w, oracle);

      const double l_aq =
          r_aq.report.handler_stats.buffering_latency_us.mean() / 1000.0;
      const double l_fixed =
          r_fixed.report.handler_stats.buffering_latency_us.mean() / 1000.0;
      const double l_mp =
          r_mp.report.handler_stats.buffering_latency_us.mean() / 1000.0;

      table.BeginRow();
      table.Cell(nw.name);
      table.Cell(target, 2);
      table.Cell(l_aq, 3);
      table.Cell(r_aq.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(ToMillis(k_star), 1);
      table.Cell(l_fixed, 3);
      table.Cell(r_fixed.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(l_mp, 3);
      table.Cell(r_mp.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(l_aq > 0 ? l_mp / l_aq : 0.0, 2);
    }
  }
  EmitTable(table, "f7_latency_vs_target.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
