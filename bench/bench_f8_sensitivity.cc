/// R-F8 — Sensitivity of the quality-driven operator to its estimator and
/// control-loop parameters.
///
/// Sweeps (a) the lateness-sketch window (how much delay history the
/// quantile estimate sees) and (b) the adaptation interval (how often the
/// control loop runs) on a non-stationary workload. Reproduced shape: tiny
/// sketches are noisy (quality jitter), huge sketches are stale (lag after
/// the step); very long adaptation intervals react too slowly. A broad
/// middle plateau means the operator does not need careful tuning — the
/// property that makes "set a quality target" a usable interface.

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  WorkloadConfig cfg = BaseConfig(80000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 12000.0;
  cfg.dynamics.kind = DynamicsKind::kStep;
  cfg.dynamics.factor = 4.0;
  cfg.dynamics.t0 = Seconds(4);
  const GeneratedWorkload w = GenerateWorkload(cfg);

  WindowedAggregation::Options wopts;
  wopts.window = WindowSpec::Tumbling(Millis(50));
  wopts.aggregate.kind = AggKind::kSum;
  const OracleEvaluator oracle(w.arrival_order, wopts.window,
                               wopts.aggregate);

  auto run_with = [&](size_t sketch_window, int64_t interval) {
    AqKSlack::Options options;
    options.target_quality = 0.95;
    options.sketch_window = sketch_window;
    options.adaptation_interval = interval;
    ContinuousQuery q;
    q.name = "f8";
    q.handler = DisorderHandlerSpec::Aq(options);
    q.window = wopts;
    return RunScored(q, w, oracle);
  };

  TableWriter sketch_table(
      "R-F8a: sensitivity to lateness-sketch window (q*=0.95, step x4)",
      {"sketch_window", "value_quality", "frac>=target", "latency_mean_ms"});
  for (size_t sketch : {size_t{64}, size_t{256}, size_t{1024}, size_t{4096},
                        size_t{16384}, size_t{65536}}) {
    const ScoredRun r = run_with(sketch, 256);
    sketch_table.BeginRow();
    sketch_table.Cell(sketch);
    sketch_table.Cell(r.quality.MeanQualityIncludingMissed(), 4);
    sketch_table.Cell(r.quality.FractionMeeting(0.95), 4);
    sketch_table.Cell(
        r.report.handler_stats.buffering_latency_us.mean() / 1000.0, 3);
  }
  EmitTable(sketch_table, "f8_sketch_sensitivity.csv");

  // Estimator ablation: the sliding-window sketch vs a uniform reservoir
  // over all history. After the step, the reservoir still believes the old
  // delay distribution and under-buffers -> quality dips; the window
  // forgets and recovers.
  TableWriter estimator_table(
      "R-F8c: lateness estimator ablation (q*=0.95, step x4)",
      {"estimator", "value_quality", "frac>=target", "latency_mean_ms"});
  for (auto estimator : {AqKSlack::Estimator::kSlidingWindow,
                         AqKSlack::Estimator::kGlobalReservoir}) {
    AqKSlack::Options options;
    options.target_quality = 0.95;
    options.estimator = estimator;
    ContinuousQuery q;
    q.name = "f8c";
    q.handler = DisorderHandlerSpec::Aq(options);
    q.window = wopts;
    const ScoredRun r = RunScored(q, w, oracle);
    estimator_table.BeginRow();
    estimator_table.Cell(estimator == AqKSlack::Estimator::kSlidingWindow
                             ? "sliding-window"
                             : "global-reservoir");
    estimator_table.Cell(r.quality.MeanQualityIncludingMissed(), 4);
    estimator_table.Cell(r.quality.FractionMeeting(0.95), 4);
    estimator_table.Cell(
        r.report.handler_stats.buffering_latency_us.mean() / 1000.0, 3);
  }
  EmitTable(estimator_table, "f8_estimator_ablation.csv");

  TableWriter interval_table(
      "R-F8b: sensitivity to adaptation interval (q*=0.95, step x4)",
      {"adaptation_interval", "value_quality", "frac>=target",
       "latency_mean_ms"});
  for (int64_t interval : {16, 64, 256, 1024, 4096, 16384}) {
    const ScoredRun r = run_with(4096, interval);
    interval_table.BeginRow();
    interval_table.Cell(interval);
    interval_table.Cell(r.quality.MeanQualityIncludingMissed(), 4);
    interval_table.Cell(r.quality.FractionMeeting(0.95), 4);
    interval_table.Cell(
        r.report.handler_stats.buffering_latency_us.mean() / 1000.0, 3);
  }
  EmitTable(interval_table, "f8_interval_sensitivity.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
