/// R-F23 — Amend-capable window engine + speculative emit-then-amend.
///
/// One table (CSV: bench_results/f23_amend.csv), one row per
/// (workload, kind, mode):
///
///   * mode=hot-buffered — the incumbent: Fixed(1s) K-slack reordering in
///     front of the kHot flat-store engine. Slack is generous enough that
///     no tuple of the standard workloads is late, so its finals are the
///     exact reference answer. Its settle latency IS the buffering delay:
///     every window waits out the full slack before firing.
///
///   * mode=amend-buffered — same buffered feed, kAmend B-tree store.
///     Isolates the amend store's overhead on the in-order path (the price
///     of amend capability when nothing needs amending).
///
///   * mode=amend-speculative — the PR's mode: no reorder buffer, the
///     output watermark trails the frontier by the amend-rate controller's
///     adaptive hold, late tuples amend materialized windows in place and
///     republish revisions. First-emission latency is the headline win;
///     the amend rate is what it paid for it.
///
/// Equivalence evidence rides in the CSV: `final_checksum` folds the last
/// revision of every (window, key) — all three modes must agree row for
/// row within a (workload, kind) group, or the speculation repaired to the
/// wrong answer. Kinds are restricted to order-insensitive exact
/// aggregates (count / max / median) where final-answer identity is exact
/// regardless of merge order; sum-family kinds agree only to FP rounding
/// and are latency-benchmarked elsewhere (R-F18).
///
/// The latency gate in tools/check_bench_regression.py: on rows where
/// >= 10% of tuples arrived behind the speculative watermark (late_frac),
/// speculative first-emission p50 must be <= 0.5x the buffered settle p50
/// measured in the SAME run — machine-independent, like the other f-suite
/// relative gates.

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/continuous_query.h"
#include "core/executor.h"
#include "quality/speculation.h"
#include "stream/generator.h"

namespace streamq {
namespace bench {
namespace {

using Engine = WindowedAggregation::Engine;

constexpr int64_t kNumEvents = 200000;
constexpr DurationUs kBufferedSlack = Seconds(1);

struct ModeSpec {
  const char* name;
  bool speculative;
  Engine engine;
};

const ModeSpec kModes[] = {
    {"hot-buffered", false, Engine::kHot},
    {"amend-buffered", false, Engine::kAmend},
    {"amend-speculative", true, Engine::kAmend},
};

ContinuousQuery BuildQuery(const ModeSpec& mode, const std::string& kind) {
  QueryBuilder builder("f23");
  builder.Sliding(Millis(500), Millis(100)).Aggregate(kind);
  builder.WindowEngine(mode.engine);
  // Lateness far beyond every workload's delay tail, in all modes: each
  // run integrates every tuple (buffered runs amend the rare tuple that
  // outlives the slack), so the final answers must be identical.
  builder.AllowedLateness(Seconds(100));
  if (mode.speculative) {
    builder.Speculative(0.95);
  } else {
    builder.FixedSlack(kBufferedSlack);
  }
  return builder.Build();
}

struct RunOutcome {
  double ns_per_tuple = 0.0;
  RunReport report;
  SpeculationReport speculation;
  uint64_t final_checksum = 0;
};

RunOutcome RunMode(const ModeSpec& mode, const std::string& kind,
                   const GeneratedWorkload& workload) {
  const ContinuousQuery query = BuildQuery(mode, kind);
  QueryExecutor exec(query);
  VectorSource source(workload.arrival_order);
  RunOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.report = exec.Run(&source);
  const auto t1 = std::chrono::steady_clock::now();
  out.ns_per_tuple =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(workload.arrival_order.size());
  out.speculation = AnalyzeSpeculation(out.report.results);
  out.final_checksum = FinalChecksum(out.report.results);
  return out;
}

void Run() {
  TableWriter table(
      "R-F23: amend-capable window engine — buffered kHot vs kAmend vs "
      "speculative emit-then-amend",
      {"workload", "kind", "mode", "ns_per_tuple", "keps", "emissions",
       "finals", "amend_rate", "late_frac", "first_p50_us", "settle_p50_us",
       "final_checksum"});

  const std::vector<std::string> kinds = {"count", "max", "median"};
  for (const NamedWorkload& w : StandardWorkloads(kNumEvents)) {
    const GeneratedWorkload workload = GenerateWorkload(w.config);
    for (const std::string& kind : kinds) {
      for (const ModeSpec& mode : kModes) {
        const RunOutcome r = RunMode(mode, kind, workload);
        const auto& hs = r.report.handler_stats;
        const double late_frac =
            hs.events_in > 0 ? static_cast<double>(hs.events_late) /
                                   static_cast<double>(hs.events_in)
                             : 0.0;
        table.BeginRow();
        table.Cell(w.name);
        table.Cell(kind);
        table.Cell(mode.name);
        table.Cell(r.ns_per_tuple, 2);
        table.Cell(1e6 / r.ns_per_tuple, 1);
        table.Cell(r.speculation.emissions);
        table.Cell(r.speculation.windows);
        table.Cell(r.speculation.amend_rate, 4);
        table.Cell(late_frac, 4);
        table.Cell(r.speculation.first_latency_us.p50, 1);
        table.Cell(r.speculation.settle_latency_us.p50, 1);
        table.Cell(static_cast<int64_t>(r.final_checksum));
      }
    }
  }

  EmitTable(table, "f23_amend.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
