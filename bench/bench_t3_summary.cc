/// R-T3 — Headline comparison: quality-driven execution vs all baselines,
/// across every workload regime.
///
/// For each workload: quality and latency of pass-through (no handling),
/// fixed K-slack at a single globally chosen K (what an operator without
/// hindsight would deploy), MP-K-slack, the speculative strategy
/// (pass-through + revisions), and AQ-K-slack at q* = 0.95. Reproduced
/// shape: AQ meets the target everywhere with latency well below
/// MP-K-slack; the single fixed K is sometimes too small (quality miss) and
/// sometimes too large (latency waste) — it cannot be right for every
/// regime, which is the paper's core argument.

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  const int64_t kNumEvents = 80000;
  WindowedAggregation::Options wopts;
  wopts.window = WindowSpec::Tumbling(Millis(50));
  wopts.aggregate.kind = AggKind::kSum;

  TableWriter table(
      "R-T3: strategy comparison across workloads (q*=0.95, window 50ms, "
      "sum)",
      {"workload", "strategy", "first_quality", "final_quality",
       "frac>=0.95", "buf_latency_mean_ms", "buf_latency_p95_ms",
       "revisions"});

  for (const NamedWorkload& nw : StandardWorkloads(kNumEvents)) {
    const GeneratedWorkload w = GenerateWorkload(nw.config);
    const OracleEvaluator oracle(w.arrival_order, wopts.window,
                                 wopts.aggregate);

    struct Strategy {
      const char* name;
      ContinuousQuery query;
    };
    std::vector<Strategy> strategies;

    {
      ContinuousQuery q;
      q.handler = DisorderHandlerSpec::PassThrough();
      q.window = wopts;
      strategies.push_back({"pass-through", q});
    }
    {
      ContinuousQuery q;
      q.handler = DisorderHandlerSpec::PassThrough();
      q.window = wopts;
      q.window.allowed_lateness = Seconds(2);
      q.window.emit_revision_per_update = false;
      strategies.push_back({"speculative", q});
    }
    {
      ContinuousQuery q;
      q.handler = DisorderHandlerSpec::Fixed(Millis(40));  // One global K.
      q.window = wopts;
      strategies.push_back({"fixed-K(40ms)", q});
    }
    {
      ContinuousQuery q;
      q.handler = DisorderHandlerSpec::Mp({});
      q.window = wopts;
      strategies.push_back({"mp-kslack", q});
    }
    {
      AqKSlack::Options aq;
      aq.target_quality = 0.95;
      ContinuousQuery q;
      q.handler = DisorderHandlerSpec::Aq(aq);
      q.window = wopts;
      strategies.push_back({"aq-kslack(0.95)", q});
    }

    for (auto& s : strategies) {
      s.query.name = s.name;
      const ScoredRun r = RunScored(s.query, w, oracle);
      QualityEvalOptions final_opts;
      final_opts.use_final_emission = true;
      const QualityReport final_quality =
          EvaluateQuality(r.report.results, oracle, final_opts);
      const DistributionSummary lat =
          Summarize(r.report.handler_stats.latency_samples);
      table.BeginRow();
      table.Cell(nw.name);
      table.Cell(s.name);
      table.Cell(r.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(final_quality.MeanQualityIncludingMissed(), 4);
      table.Cell(r.quality.FractionMeeting(0.95), 4);
      table.Cell(lat.mean / 1000.0, 3);
      table.Cell(lat.p95 / 1000.0, 3);
      table.Cell(r.report.window_stats.revisions);
    }
  }
  EmitTable(table, "t3_summary.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
