/// R-F16 — Batched hot path + parallel execution of the disorder→window
/// pipeline.
///
/// Three tables, all written under bench_results/:
///  1. f16_batch_sweep.csv     — per-tuple Feed vs FeedBatch at batch sizes
///     1/16/256/4096/whole-stream on a 1M-tuple stream. Output is identical
///     across rows (the OnBatch contract), so the ratio column is pure
///     mechanics: virtual-dispatch amortization + bulk buffer operations.
///  2. f16_parallel_queries.csv — N independent queries over one stream,
///     sequential shared-loop plan vs one worker thread per query.
///  3. f16_sharded_keyed.csv    — one keyed query, key space hashed across
///     S shard pipelines on worker threads.
/// Thread-scaling numbers depend on available cores; the harness reports
/// the hardware it ran on.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/multi_query.h"
#include "core/parallel_runner.h"

namespace streamq {
namespace bench {
namespace {

constexpr int kReps = 3;  // Best-of-N wall time per configuration.

DisorderHandlerSpec BenchSpec(bool adaptive) {
  DisorderHandlerSpec s;
  if (adaptive) {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    s = DisorderHandlerSpec::Aq(aq);
  } else {
    s = DisorderHandlerSpec::Fixed(Millis(30));
  }
  return s.WithLatencySamples(false);
}

ContinuousQuery BenchQuery(const std::string& name, bool adaptive) {
  ContinuousQuery q;
  q.name = name;
  q.handler = BenchSpec(adaptive);
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  return q;
}

/// Runs `fn` kReps times and returns the minimum wall seconds.
template <typename Fn>
double BestWallSeconds(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const TimestampUs t0 = WallClockMicros();
    fn();
    const double s = ToSeconds(WallClockMicros() - t0);
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

void BatchSweep(const GeneratedWorkload& w) {
  const std::span<const Event> events(w.arrival_order);
  const double mev = static_cast<double>(events.size()) / 1e6;

  TableWriter table("R-F16a: batched hot path, 1M-tuple stream (identical "
                    "output at every batch size)",
                    {"handler", "mode", "wall_ms", "mev_per_s",
                     "speedup_vs_per_tuple", "results"});

  for (bool adaptive : {false, true}) {
    const ContinuousQuery q =
        BenchQuery(adaptive ? "aq-kslack" : "fixed-kslack", adaptive);
    size_t result_count = 0;
    const double per_tuple_s = BestWallSeconds([&] {
      QueryExecutor exec(q);
      for (const Event& e : events) exec.Feed(e);
      exec.Finish();
      result_count = exec.results().size();
    });
    table.BeginRow();
    table.Cell(q.handler.Describe());
    table.Cell("per-tuple");
    table.Cell(per_tuple_s * 1e3, 1);
    table.Cell(mev / per_tuple_s, 2);
    table.Cell(1.0, 2);
    table.Cell(result_count);

    for (size_t batch : {size_t{1}, size_t{16}, size_t{256}, size_t{4096},
                         events.size()}) {
      size_t batched_results = 0;
      const double s = BestWallSeconds([&] {
        QueryExecutor exec(q);
        for (size_t i = 0; i < events.size(); i += batch) {
          exec.FeedBatch(
              events.subspan(i, std::min(batch, events.size() - i)));
        }
        exec.Finish();
        batched_results = exec.results().size();
      });
      char mode[32];
      if (batch == events.size()) {
        std::snprintf(mode, sizeof(mode), "batch=all");
      } else {
        std::snprintf(mode, sizeof(mode), "batch=%zu", batch);
      }
      table.BeginRow();
      table.Cell(q.handler.Describe());
      table.Cell(mode);
      table.Cell(s * 1e3, 1);
      table.Cell(mev / s, 2);
      table.Cell(per_tuple_s / s, 2);
      table.Cell(batched_results);
      if (batched_results != result_count) {
        std::cerr << "ERROR: batched run diverged from per-tuple run\n";
      }
    }
  }
  EmitTable(table, "f16_batch_sweep.csv");
}

void ParallelQueries(const GeneratedWorkload& w) {
  TableWriter table("R-F16b: N independent queries, sequential vs one "
                    "worker thread per query",
                    {"queries", "plan", "wall_ms", "total_mev_per_s",
                     "speedup_vs_sequential"});
  const double mev = static_cast<double>(w.arrival_order.size()) / 1e6;

  for (int nq : {1, 2, 4}) {
    auto add_queries = [&](auto& runner) {
      for (int i = 0; i < nq; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "q%d", i);
        runner.AddQuery(BenchQuery(name, /*adaptive=*/true));
      }
    };
    VectorSource source(w.arrival_order);

    const double seq_s = BestWallSeconds([&] {
      MultiQueryRunner runner(MultiQueryRunner::Plan::kIndependent);
      add_queries(runner);
      source.Reset();
      runner.Run(&source);
    });
    table.BeginRow();
    table.Cell(nq);
    table.Cell("sequential");
    table.Cell(seq_s * 1e3, 1);
    table.Cell(mev * nq / seq_s, 2);
    table.Cell(1.0, 2);

    const double par_s = BestWallSeconds([&] {
      ParallelMultiQueryRunner runner;
      add_queries(runner);
      source.Reset();
      runner.Run(&source);
    });
    table.BeginRow();
    table.Cell(nq);
    table.Cell("parallel");
    table.Cell(par_s * 1e3, 1);
    table.Cell(mev * nq / par_s, 2);
    table.Cell(seq_s / par_s, 2);
  }
  EmitTable(table, "f16_parallel_queries.csv");
}

void ShardedKeyed(const GeneratedWorkload& w) {
  ContinuousQuery q;
  q.name = "keyed";
  q.handler =
      DisorderHandlerSpec::Fixed(Millis(30)).PerKey().WithLatencySamples(false);
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.per_key_watermarks = true;

  TableWriter table("R-F16c: one keyed query, key space sharded across "
                    "worker threads",
                    {"shards", "wall_ms", "mev_per_s",
                     "speedup_vs_sequential"});
  const double mev = static_cast<double>(w.arrival_order.size()) / 1e6;
  VectorSource source(w.arrival_order);

  const double seq_s = BestWallSeconds([&] {
    QueryExecutor exec(q);
    source.Reset();
    exec.Run(&source);
  });
  table.BeginRow();
  table.Cell("sequential");
  table.Cell(seq_s * 1e3, 1);
  table.Cell(mev / seq_s, 2);
  table.Cell(1.0, 2);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    const double s = BestWallSeconds([&] {
      ShardedKeyedRunner runner(q, shards);
      source.Reset();
      runner.Run(&source);
    });
    char label[16];
    std::snprintf(label, sizeof(label), "S=%zu", shards);
    table.BeginRow();
    table.Cell(label);
    table.Cell(s * 1e3, 1);
    table.Cell(mev / s, 2);
    table.Cell(seq_s / s, 2);
  }
  EmitTable(table, "f16_sharded_keyed.csv");
}

void Run() {
  std::cout << "hardware_concurrency=" << std::thread::hardware_concurrency()
            << "\n\n";

  WorkloadConfig big = BaseConfig(1000000);
  big.delay.model = DelayModel::kExponential;
  big.delay.a = 20000.0;
  BatchSweep(GenerateWorkload(big));

  WorkloadConfig mid = BaseConfig(200000);
  mid.delay.model = DelayModel::kExponential;
  mid.delay.a = 20000.0;
  ParallelQueries(GenerateWorkload(mid));

  WorkloadConfig keyed = BaseConfig(200000);
  keyed.delay.model = DelayModel::kExponential;
  keyed.delay.a = 20000.0;
  keyed.num_keys = 16;
  ShardedKeyed(GenerateWorkload(keyed));
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
