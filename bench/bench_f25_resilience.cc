/// R-F25 — Resilience: chaos goodput, replay/dedup identity, and admission
/// control under overload.
///
/// One table (CSV: bench_results/f25_resilience.csv), two sections:
///
///   chaos     The same seeded 4-tenant workload driven by ResilientClients
///             at 0%, 1% and 5% injected transport fault rates. A single
///             ChaosInjector is wired into BOTH the server (every accepted
///             connection) and every client connection, so requests, acks
///             and session grants all cross the hostile wire — the only
///             configuration in which ack loss forces genuine retransmits
///             and the server's dedup path carries real traffic.
///
///   overload  The same workload against per-tenant rate quotas (with and
///             without chaos on top): clients absorb kOverloaded replies,
///             honor the server's retry-after, and resend the same sequence
///             numbers until admitted.
///
/// Hard gates (tools/check_bench_regression.py, f25 suite):
///
///   * Exactly-once under faults — the combined per-tenant result checksum
///     is identical across EVERY row: fault-free, 5% chaos, throttled, and
///     chaos-plus-throttled runs all converge to byte-identical results.
///     Every row's replayed == deduped (no retransmit was double-applied),
///     identities/deliveries hold, and errors == 0.
///
///   * Chaos is real — rows with fault_pct > 0 must report faults > 0 (the
///     schedule actually fired) and the 5% rows must inject more than the
///     1% row.
///
///   * Quotas hold exactly — a token bucket admitting at rate R with burst
///     B cannot accept N events per tenant in less than (N - B) / R wall
///     seconds, so overload rows are gated on wall_ms >= that bound as
///     well as throttled > 0: the run was genuinely stretched by
///     admission control, not merely annotated with it.
///
/// Event counts are small (4 x 5000): the sweep measures protocol-level
/// robustness accounting, not aggregation speed — R-F22 owns throughput.

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/chaos.h"
#include "net/retry.h"
#include "net/server.h"
#include "stream/generator.h"

namespace streamq {
namespace bench {
namespace {

constexpr int kClients = 2;
constexpr int kTenants = 4;
constexpr int64_t kEventsPerTenant = 5000;
constexpr size_t kBatch = 250;

struct RunConfig {
  const char* section;
  double fault_pct;     // Per-send probability (in %) of each fault class.
  double quota_eps;     // Per-tenant token-bucket rate; 0 = unlimited.
  double quota_burst;   // Bucket capacity in events.
};

struct RunOutcome {
  double wall_s = 0.0;
  int64_t events = 0;
  int64_t errors = 0;
  int64_t retries = 0;
  int64_t reconnects = 0;
  int64_t replayed = 0;
  int64_t deduped = 0;
  int64_t throttled = 0;
  int64_t faults = 0;
  bool identities_ok = true;
  bool deliveries_ok = true;
  uint64_t checksum = 0xcbf29ce484222325ULL;
};

uint64_t FoldChecksum(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::vector<Event> TenantStream(int tenant) {
  WorkloadConfig config;
  config.num_events = kEventsPerTenant;
  config.num_keys = 8;
  config.seed = 100 + static_cast<uint64_t>(tenant);
  return GenerateWorkload(config).arrival_order;
}

/// Fast-cycling schedule (faults cost milliseconds, not the production
/// 250ms ceiling), decorrelated per client like the loadgen drivers. The
/// attempt budget is deep: at the 5% row roughly one send in five is
/// faulted on each side of the wire, and a batch must survive anyway.
RetryPolicy ClientPolicy(int client_index) {
  RetryPolicy policy;
  policy.max_attempts = 30;
  policy.initial_backoff = Millis(1);
  policy.max_backoff = Millis(16);
  policy.deadline = Seconds(120);
  policy.seed =
      9 ^ (static_cast<uint64_t>(client_index) + 1) * 0x9E3779B97F4A7C15ULL;
  return policy;
}

/// One full run: server + kClients resilient drivers, tenants striped
/// across clients, batches round-robined so every run applies the same
/// per-tenant byte stream in the same order regardless of faults. Each
/// driver finishes with an idempotent sequenced heartbeat past
/// `flush_bound` (watermark advance over the hostile wire), then the
/// injector is disarmed and every tenant is sealed with Unregister over a
/// clean connection — injection window and audit window, like a real
/// chaos drill.
RunOutcome RunOnce(const RunConfig& config,
                   const std::vector<std::vector<Event>>& streams,
                   TimestampUs flush_bound) {
  RunOutcome out;

  std::optional<ChaosInjector> injector;
  if (config.fault_pct > 0.0) {
    ChaosSpec spec;
    spec.seed = 77;
    const double p = config.fault_pct / 100.0;
    spec.reset_prob = p;
    spec.short_write_prob = p;
    spec.corrupt_prob = p;
    spec.truncate_prob = p;
    spec.accept_close_prob = p;
    injector.emplace(spec);
  }

  ServerOptions server_options;
  server_options.quota_rate_eps = config.quota_eps;
  server_options.quota_burst = config.quota_burst;
  if (injector) server_options.chaos = &*injector;
  StreamQServer server(server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "server start failed: " << started.ToString() << "\n";
    std::exit(1);
  }
  // Truncation faults hang the reply until the recv timeout fires, so the
  // chaos rows run on a short fuse; clean rows never time out.
  const DurationUs reply_timeout = injector ? Millis(250) : Seconds(30);

  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> reconnects{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (int c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      auto client =
          ResilientClient::Connect(server.port(), ClientPolicy(c),
                                   injector ? &*injector : nullptr,
                                   reply_timeout);
      if (!client.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::vector<int> own;
      for (int t = 1; t <= kTenants; ++t) {
        if ((t - 1) % kClients != c) continue;
        own.push_back(t);
        SessionOptions options;
        options.Name("tenant-" + std::to_string(t)).Window(100);
        if (!client.value()->Open(static_cast<uint32_t>(t), options).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      size_t offset = 0;
      bool more = true;
      while (more) {
        more = false;
        for (int t : own) {
          const std::vector<Event>& stream =
              streams[static_cast<size_t>(t - 1)];
          if (offset >= stream.size()) continue;
          const size_t n = std::min(kBatch, stream.size() - offset);
          const Status st = client.value()->Ingest(
              static_cast<uint32_t>(t),
              std::span<const Event>(stream.data() + offset, n));
          if (!st.ok()) errors.fetch_add(1, std::memory_order_relaxed);
          more = true;
        }
        offset += kBatch;
      }
      for (int t : own) {
        const Status beat = client.value()->Heartbeat(
            static_cast<uint32_t>(t), flush_bound, flush_bound);
        if (!beat.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
      retries.fetch_add(client.value()->stats().retries,
                        std::memory_order_relaxed);
      reconnects.fetch_add(client.value()->stats().reconnects,
                           std::memory_order_relaxed);
    });
  }
  for (std::thread& t : drivers) t.join();
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.errors = errors.load();
  out.retries = retries.load();
  out.reconnects = reconnects.load();

  // Verification window: disarm the injector and seal every tenant over a
  // clean wire. Unregister is the only call that finishes the session (the
  // accounting identity and the result checksum are Finish()-time
  // properties), and it is not idempotent — so it runs outside the fault
  // window, exactly as a real chaos drill separates injection from audit.
  if (injector) injector->Disarm();
  auto collector = StreamQClient::Connect(server.port());
  if (!collector.ok()) {
    ++out.errors;
  } else {
    for (int t = 1; t <= kTenants; ++t) {
      auto stats = collector.value()->Unregister(static_cast<uint32_t>(t));
      if (!stats.ok()) {
        ++out.errors;
        continue;
      }
      out.events += stats.value().events_ingested;
      out.identities_ok &= stats.value().AccountingIdentityHolds();
      out.deliveries_ok &= stats.value().events_ingested == kEventsPerTenant;
      out.checksum = FoldChecksum(out.checksum, stats.value().result_checksum);
    }
  }

  const ServerStats stats = server.stats();
  out.replayed = stats.frames_replayed;
  out.deduped = stats.frames_deduped;
  out.throttled = stats.frames_throttled;
  if (injector) out.faults = injector->stats().total();
  server.Stop();
  return out;
}

void Run() {
  std::vector<std::vector<Event>> streams;
  for (int t = 1; t <= kTenants; ++t) streams.push_back(TenantStream(t));
  TimestampUs flush_bound = 0;
  for (const std::vector<Event>& stream : streams) {
    for (const Event& e : stream) {
      flush_bound = std::max(flush_bound, e.event_time);
    }
  }
  flush_bound += Millis(10);  // A few windows past the last event.

  TableWriter table(
      "R-F25: resilience — chaos goodput, replay/dedup identity, and "
      "admission control (4 tenants, 2 resilient clients, loopback TCP)",
      {"section", "fault_pct", "quota_eps", "burst", "clients", "tenants",
       "events", "batch", "wall_ms", "keps", "errors", "retries",
       "reconnects", "replayed", "deduped", "throttled", "faults",
       "identities", "deliveries", "checksum"});

  const RunConfig kConfigs[] = {
      {"chaos", 0.0, 0.0, 0.0},
      {"chaos", 1.0, 0.0, 0.0},
      {"chaos", 5.0, 0.0, 0.0},
      {"overload", 0.0, 20000.0, 500.0},
      {"overload", 5.0, 20000.0, 500.0},
  };

  for (const RunConfig& config : kConfigs) {
    const RunOutcome outcome = RunOnce(config, streams, flush_bound);
    table.BeginRow();
    table.Cell(config.section);
    table.Cell(config.fault_pct, 1);
    table.Cell(config.quota_eps, 0);
    table.Cell(config.quota_burst, 0);
    table.Cell(static_cast<int64_t>(kClients));
    table.Cell(static_cast<int64_t>(kTenants));
    table.Cell(outcome.events);
    table.Cell(static_cast<int64_t>(kBatch));
    table.Cell(outcome.wall_s * 1000.0, 2);
    table.Cell(outcome.wall_s > 0.0
                   ? static_cast<double>(outcome.events) / outcome.wall_s /
                         1000.0
                   : 0.0,
               1);
    table.Cell(outcome.errors);
    table.Cell(outcome.retries);
    table.Cell(outcome.reconnects);
    table.Cell(outcome.replayed);
    table.Cell(outcome.deduped);
    table.Cell(outcome.throttled);
    table.Cell(outcome.faults);
    table.Cell(static_cast<int64_t>(outcome.identities_ok ? 1 : 0));
    table.Cell(static_cast<int64_t>(outcome.deliveries_ok ? 1 : 0));
    table.Cell(static_cast<int64_t>(outcome.checksum));
  }

  EmitTable(table, "f25_resilience.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
