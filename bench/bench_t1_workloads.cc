/// R-T1 — Workload characterization table.
///
/// Reproduces the standard "evaluation workloads" table: for each stream
/// regime, its arrival rate, delay model, fraction of out-of-order tuples
/// and the lateness distribution that determines how hard disorder handling
/// is. These are the inputs every other experiment runs on.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "stream/disorder_metrics.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  TableWriter table(
      "R-T1: workload characterization (100k tuples each)",
      {"workload", "delay_model", "dynamics", "ooo_frac", "mean_late_ms",
       "p95_late_ms", "p99_late_ms", "max_late_ms", "max_displacement"});

  for (const NamedWorkload& nw : StandardWorkloads(100000)) {
    const GeneratedWorkload w = GenerateWorkload(nw.config);
    const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
    table.BeginRow();
    table.Cell(nw.name);
    table.Cell(nw.config.delay.Describe());
    table.Cell(nw.config.dynamics.Describe());
    table.Cell(stats.out_of_order_fraction, 3);
    table.Cell(stats.mean_lateness_us / 1000.0, 2);
    table.Cell(ToMillis(stats.p95_lateness_us), 2);
    table.Cell(ToMillis(stats.p99_lateness_us), 2);
    table.Cell(ToMillis(stats.max_lateness_us), 2);
    table.Cell(stats.max_displacement);
  }
  EmitTable(table, "t1_workloads.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
