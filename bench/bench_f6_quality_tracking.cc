/// R-F6 — Does the achieved quality track the user's target over time?
///
/// Runs AQ-K-slack at targets {0.80, 0.90, 0.95, 0.99} over a stream with
/// sinusoidally varying delay scale and reports the measured quality (from
/// the operator's own audit) in windows of stream time, plus the end-to-end
/// value quality against the oracle. Reproduced shape: each curve hovers
/// around its target (not around 1.0 — that would mean paying latency for
/// quality nobody asked for).

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

/// Captures the operator's adaptation decisions through the observer API
/// (instead of reaching into the executor for the concrete handler).
class AdaptationTraceObserver : public PipelineObserver {
 public:
  void OnAdaptation(const AdaptationSample& sample) override {
    trace.push_back(sample);
  }
  std::vector<AdaptationSample> trace;
};

void Run() {
  WorkloadConfig cfg = BaseConfig(120000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 15000.0;
  cfg.dynamics.kind = DynamicsKind::kSine;
  cfg.dynamics.amplitude = 0.8;
  cfg.dynamics.period = Seconds(3);
  const GeneratedWorkload w = GenerateWorkload(cfg);

  WindowedAggregation::Options wopts;
  wopts.window = WindowSpec::Tumbling(Millis(50));
  wopts.aggregate.kind = AggKind::kSum;
  const OracleEvaluator oracle(w.arrival_order, wopts.window,
                               wopts.aggregate);

  const double targets[] = {0.80, 0.90, 0.95, 0.99};

  // Time series of the operator's measured quality, one column per target.
  std::vector<std::vector<AdaptationSample>> traces;
  TableWriter summary(
      "R-F6 summary: end-to-end quality vs target (sine-modulated delays)",
      {"target", "mean_value_quality", "coverage", "frac_windows>=target",
       "buf_latency_mean_ms"});

  for (double target : targets) {
    AqKSlack::Options options;
    options.target_quality = target;

    ContinuousQuery q;
    q.name = "f6";
    q.handler = DisorderHandlerSpec::Aq(options);
    q.window = wopts;

    QueryExecutor exec(q);
    AdaptationTraceObserver trace_observer;
    exec.SetObserver(&trace_observer);
    VectorSource source(w.arrival_order);
    const RunReport report = exec.Run(&source);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    traces.push_back(std::move(trace_observer.trace));

    summary.BeginRow();
    summary.Cell(target, 2);
    summary.Cell(quality.MeanQualityIncludingMissed(), 4);
    summary.Cell(quality.coverage.mean, 4);
    summary.Cell(quality.FractionMeeting(target), 4);
    summary.Cell(report.handler_stats.buffering_latency_us.mean() / 1000.0, 3);
  }

  TableWriter series("R-F6 series: operator-measured quality over time",
                     {"stream_time_s", "q@0.80", "q@0.90", "q@0.95",
                      "q@0.99"});
  const size_t n = traces[0].size();
  const size_t step = n > 60 ? n / 60 : 1;  // ~60 printed rows.
  for (size_t i = 0; i < n; i += step) {
    series.BeginRow();
    series.Cell(ToSeconds(traces[0][i].stream_time), 2);
    for (const auto& trace : traces) {
      series.Cell(i < trace.size() ? trace[i].measured : 0.0, 4);
    }
  }
  EmitTable(series, "f6_quality_series.csv");
  EmitTable(summary, "f6_quality_summary.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
