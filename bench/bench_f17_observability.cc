/// R-F17 — What does observability cost?
///
/// Measures the disorder→window pipeline on a 1M-tuple stream in three
/// configurations per handler (fixed and AQ K-slack):
///   off       — no observer installed: the hot path sees only a null
///               pointer check per hook site (no virtual dispatch).
///   null      — a no-op PipelineObserver attached: pure hook-dispatch
///               cost (virtual calls that do nothing). Gate: ≤2% overhead.
///   metrics   — a full MetricsObserver attached: every hook live, all
///               counters/gauges/log-bucketed histograms recording. Not
///               gated, just recorded — this is the price of turning
///               collection on.
/// Emits bench_results/f17_observer_overhead.csv.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/metrics_observer.h"

namespace streamq {
namespace bench {
namespace {

constexpr int kReps = 3;  // Best-of-N wall time per configuration.

ContinuousQuery BenchQuery(bool adaptive) {
  ContinuousQuery q;
  q.name = adaptive ? "aq-kslack" : "fixed-kslack";
  DisorderHandlerSpec s;
  if (adaptive) {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    s = DisorderHandlerSpec::Aq(aq);
  } else {
    s = DisorderHandlerSpec::Fixed(Millis(30));
  }
  q.handler = s.WithLatencySamples(false);
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  return q;
}

template <typename Fn>
double BestWallSeconds(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const TimestampUs t0 = WallClockMicros();
    fn();
    const double s = ToSeconds(WallClockMicros() - t0);
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

void Run() {
  WorkloadConfig cfg = BaseConfig(1000000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const double mev = static_cast<double>(w.arrival_order.size()) / 1e6;

  TableWriter table("R-F17: observer overhead, 1M-tuple stream (results are "
                    "identical across modes; wall time is the only delta)",
                    {"handler", "observer", "wall_ms", "mev_per_s",
                     "overhead_pct", "results"});

  for (bool adaptive : {false, true}) {
    const ContinuousQuery q = BenchQuery(adaptive);
    VectorSource source(w.arrival_order);

    size_t base_results = 0;
    const double off_s = BestWallSeconds([&] {
      QueryExecutor exec(q);
      source.Reset();
      exec.Run(&source);
      base_results = exec.results().size();
    });
    table.BeginRow();
    table.Cell(q.name);
    table.Cell("off");
    table.Cell(off_s * 1e3, 1);
    table.Cell(mev / off_s, 2);
    table.Cell(0.0, 2);
    table.Cell(base_results);

    size_t null_results = 0;
    const double null_s = BestWallSeconds([&] {
      QueryExecutor exec(q);
      PipelineObserver null_observer;  // Every hook is a no-op virtual.
      exec.SetObserver(&null_observer);
      source.Reset();
      exec.Run(&source);
      null_results = exec.results().size();
    });
    table.BeginRow();
    table.Cell(q.name);
    table.Cell("null");
    table.Cell(null_s * 1e3, 1);
    table.Cell(mev / null_s, 2);
    table.Cell((null_s / off_s - 1.0) * 100.0, 2);
    table.Cell(null_results);

    size_t observed_results = 0;
    int64_t observed_events = 0;
    const double on_s = BestWallSeconds([&] {
      QueryExecutor exec(q);
      MetricsObserver observer;
      exec.SetObserver(&observer);
      source.Reset();
      exec.Run(&source);
      observed_results = exec.results().size();
      observed_events =
          observer.Snapshot().counters.at("streamq.source.events_total");
    });
    table.BeginRow();
    table.Cell(q.name);
    table.Cell("metrics");
    table.Cell(on_s * 1e3, 1);
    table.Cell(mev / on_s, 2);
    table.Cell((on_s / off_s - 1.0) * 100.0, 2);
    table.Cell(observed_results);

    if (null_results != base_results || observed_results != base_results) {
      std::cerr << "ERROR: observed run diverged from baseline\n";
    }
    if (observed_events != static_cast<int64_t>(w.arrival_order.size())) {
      std::cerr << "ERROR: observer missed source events\n";
    }
  }
  EmitTable(table, "f17_observer_overhead.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
