/// R-F19 — Disorder-stage data layout: bucket ring vs binary heap, flat
/// keyed sharding vs per-event dispatch.
///
/// Two sections in one table (CSV: bench_results/f19_disorder.csv):
///
///   * section=buffer — raw ReorderBuffer per-tuple push+release cost at
///     steady-state occupancies 10^2..10^6 (K-slack style: the release
///     threshold trails the event-time frontier by K, so occupancy ≈
///     K x arrival rate). The heap pays O(log n) per tuple; the bucket
///     ring's cost is O(1) amortized and flat in n — the gap must widen
///     with occupancy.
///
///   * section=keyed — KeyedDisorderHandler over a 16-key stream: per-event
///     OnEvent vs run-segmented OnBatch (bursty and uniform-random key
///     order, shallow 30ms-slack and deep 60s-slack regimes), plus a 1-key
///     row pitting the keyed wrapper's batch path against the bare global
///     handler (quantifies the wrapper's fixed accounting tax).
///
/// Every configuration runs on both engines; the order-sensitive `checksum`
/// over released tuples must agree between the heap and ring rows of the
/// same configuration — the equivalence evidence rides in the CSV next to
/// the speedup, as in R-F18.

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "disorder/fixed_kslack.h"
#include "disorder/handler_factory.h"
#include "disorder/reorder_buffer.h"

namespace streamq {
namespace bench {
namespace {

using Engine = ReorderBuffer::Engine;

const char* EngineName(Engine e) { return e == Engine::kHeap ? "heap" : "ring"; }

/// Order-sensitive FNV-style fold: identical release sequences (and only
/// identical sequences) produce identical checksums.
uint64_t FoldChecksum(uint64_t h, const Event& e) {
  h ^= static_cast<uint64_t>(e.id);
  h *= 0x100000001B3ull;
  h ^= static_cast<uint64_t>(e.event_time);
  h *= 0x100000001B3ull;
  return h;
}

struct RunOutcome {
  double ns_per_tuple = 0.0;
  size_t max_buffer = 0;
  uint64_t checksum = 0;
};

// --- Section 1: raw buffer push+release sweep ----------------------------

/// Streams `total` events (100us cadence, delay uniform in [0, K/2]) through
/// one ReorderBuffer, releasing up to frontier-K after every push. The
/// first `warmup` events fill the buffer to steady state untimed.
RunOutcome RunBufferSweep(Engine engine, size_t warmup, size_t measured,
                          DurationUs k) {
  Rng rng(1234);
  ReorderBuffer buf(engine);
  std::vector<Event> released;
  RunOutcome out;
  TimestampUs frontier = 0;
  int64_t id = 0;
  const auto step = [&] {
    Event e;
    e.id = id;
    const TimestampUs arrival = id * 100;
    e.event_time = arrival - rng.NextInt(0, std::max<DurationUs>(1, k / 2));
    e.arrival_time = arrival;
    ++id;
    frontier = std::max(frontier, e.event_time);
    buf.Push(e);
    released.clear();
    buf.PopUpTo(frontier - k, &released);
    for (const Event& r : released) out.checksum = FoldChecksum(out.checksum, r);
  };
  for (size_t i = 0; i < warmup; ++i) step();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < measured; ++i) step();
  const auto t1 = std::chrono::steady_clock::now();
  released.clear();
  buf.DrainInto(&released);
  for (const Event& r : released) out.checksum = FoldChecksum(out.checksum, r);
  out.ns_per_tuple =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(measured);
  out.max_buffer = buf.max_size();
  return out;
}

// --- Section 2: keyed dispatch ------------------------------------------

struct ChecksumSink : EventSink {
  void OnEvent(const Event& e) override { checksum = FoldChecksum(checksum, e); }
  void OnEvents(std::span<const Event> events) override {
    for (const Event& e : events) checksum = FoldChecksum(checksum, e);
  }
  void OnWatermark(TimestampUs, TimestampUs) override {}
  uint64_t checksum = 0;
};

std::vector<Event> KeyedStream(size_t n, int64_t num_keys, bool bursty) {
  Rng rng(777);
  std::vector<Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = static_cast<int64_t>(i);
    e.arrival_time = static_cast<TimestampUs>(i) * 100;
    e.event_time = e.arrival_time - rng.NextInt(0, Millis(15));
    e.key = bursty ? static_cast<int64_t>(i / 32) % num_keys
                   : rng.NextInt(0, num_keys - 1);
    e.value = 1.0;
    events.push_back(e);
  }
  return events;
}

/// Drives a handler spec over `events` per-event (batch == 0) or in
/// OnBatch chunks; reports per-tuple feed cost and the released-sequence
/// checksum. The end-of-stream Flush runs outside the timer (its bulk
/// drain is identical across modes and would only dilute the per-tuple
/// numbers) but its releases still fold into the checksum.
RunOutcome RunKeyed(const DisorderHandlerSpec& spec, Engine engine,
                    const std::vector<Event>& events, size_t batch) {
  std::unique_ptr<DisorderHandler> handler = MakeDisorderHandlerOrDie(
      spec.WithBufferEngine(engine).WithLatencySamples(false));
  ChecksumSink sink;
  const std::span<const Event> stream(events);
  const auto t0 = std::chrono::steady_clock::now();
  if (batch == 0) {
    for (const Event& e : stream) handler->OnEvent(e, &sink);
  } else {
    for (size_t i = 0; i < stream.size(); i += batch) {
      handler->OnBatch(stream.subspan(i, std::min(batch, stream.size() - i)),
                       &sink);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  handler->Flush(&sink);
  RunOutcome out;
  out.ns_per_tuple =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(events.size());
  out.max_buffer = handler->stats().max_buffer_size;
  out.checksum = sink.checksum;
  return out;
}

void Run() {
  TableWriter table(
      "R-F19: disorder-stage layout — bucket ring vs heap, keyed batch "
      "dispatch",
      {"section", "config", "engine", "ns_per_tuple", "ktuples_per_s",
       "max_buffer", "checksum"});

  // Buffer occupancy sweep: K = target_size x 100us inter-arrival.
  struct SweepPoint {
    const char* name;
    size_t target_size;
  };
  const SweepPoint points[] = {
      {"size=1e2", 100},       {"size=1e3", 1000},   {"size=1e4", 10000},
      {"size=1e5", 100000},    {"size=1e6", 1000000},
  };
  for (const SweepPoint& p : points) {
    const DurationUs k = static_cast<DurationUs>(p.target_size) * 100;
    const size_t measured = 1000000;
    for (Engine engine : {Engine::kHeap, Engine::kRing}) {
      const RunOutcome r =
          RunBufferSweep(engine, /*warmup=*/p.target_size, measured, k);
      table.BeginRow();
      table.Cell("buffer");
      table.Cell(p.name);
      table.Cell(EngineName(engine));
      table.Cell(r.ns_per_tuple, 2);
      table.Cell(1e6 / r.ns_per_tuple, 1);
      table.Cell(r.max_buffer);
      table.Cell(static_cast<int64_t>(r.checksum));
    }
  }

  // Keyed dispatch: 16-key stream, fixed 30ms slack shards.
  const size_t kKeyedEvents = 1000000;
  const size_t kBatch = 256;
  const DisorderHandlerSpec keyed_spec =
      DisorderHandlerSpec::Fixed(Millis(30)).PerKey();
  const DisorderHandlerSpec global_spec = DisorderHandlerSpec::Fixed(Millis(30));
  // Deep-buffer regime: K = 60s against a 100s stream, so shards fill to
  // ~600k buffered tuples before steady-state releases start. Per-shard
  // work per tuple is highest here, which is exactly where the
  // run-segmented OnBatch pays off: the per-event dispatch layer (route,
  // arm, aggregate bookkeeping) is amortized over whole key runs.
  const DisorderHandlerSpec deep_spec =
      DisorderHandlerSpec::Fixed(Seconds(60)).PerKey();
  const std::vector<Event> bursty = KeyedStream(kKeyedEvents, 16, true);
  const std::vector<Event> random = KeyedStream(kKeyedEvents, 16, false);
  const std::vector<Event> one_key = KeyedStream(kKeyedEvents, 1, true);

  struct KeyedRow {
    const char* name;
    const DisorderHandlerSpec* spec;
    const std::vector<Event>* events;
    size_t batch;
  };
  const KeyedRow rows[] = {
      {"bursty16-perevent", &keyed_spec, &bursty, 0},
      {"bursty16-batch256", &keyed_spec, &bursty, kBatch},
      {"random16-perevent", &keyed_spec, &random, 0},
      {"random16-batch256", &keyed_spec, &random, kBatch},
      {"bursty16-deep-perevent", &deep_spec, &bursty, 0},
      {"bursty16-deep-batch256", &deep_spec, &bursty, kBatch},
      {"1key-global-batch256", &global_spec, &one_key, kBatch},
      {"1key-keyed-batch256", &keyed_spec, &one_key, kBatch},
  };
  for (const KeyedRow& row : rows) {
    for (Engine engine : {Engine::kHeap, Engine::kRing}) {
      const RunOutcome r = RunKeyed(*row.spec, engine, *row.events, row.batch);
      table.BeginRow();
      table.Cell("keyed");
      table.Cell(row.name);
      table.Cell(EngineName(engine));
      table.Cell(r.ns_per_tuple, 2);
      table.Cell(1e6 / r.ns_per_tuple, 1);
      table.Cell(r.max_buffer);
      table.Cell(static_cast<int64_t>(r.checksum));
    }
  }

  EmitTable(table, "f19_disorder.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
