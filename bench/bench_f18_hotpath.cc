/// R-F18 — Window-operator hot-path cost, engine by engine.
///
/// Isolates WindowedAggregation from the disorder stage: a pre-sorted
/// in-order stream is fed straight into the operator via OnEvents in a
/// chosen batch size, with a watermark every 1024 tuples (fixed cadence, so
/// batch size only changes fold granularity, not firing work). Reports
/// per-tuple cost broken down by aggregate kind, window shape (fold
/// fanout), batch size and engine:
///
///   * legacy      — std::map + virtual Aggregator::Add per (tuple, window)
///   * hot         — flat store + inline states + fold-plan memo
///                   (pane sharing under the default kAuto policy, i.e.
///                   only for grouping-exact kinds on tiling windows)
///   * hot_paned   — pane sharing forced (inline kinds only): one fold per
///                   tuple plus one merge per (run, window)
///
/// The `checksum` column (sum of emitted values) must agree between legacy
/// and hot rows of the same configuration — the equivalence evidence rides
/// in the CSV next to the speedup.

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "window/window_operator.h"

namespace streamq {
namespace bench {
namespace {

struct NullSink : WindowResultSink {
  void OnResult(const WindowResult& r) override {
    checksum += r.value;
    ++emissions;
  }
  double checksum = 0.0;
  int64_t emissions = 0;
};

struct Shape {
  const char* name;
  WindowSpec spec;
};

struct RunOutcome {
  double ns_per_tuple = 0.0;
  double checksum = 0.0;
  int64_t emissions = 0;
};

RunOutcome RunOperator(const WindowedAggregation::Options& opts,
                       const std::vector<Event>& in_order,
                       size_t batch_size) {
  NullSink sink;
  WindowedAggregation op(opts, &sink);
  constexpr size_t kWatermarkEvery = 1024;
  const DurationUs lag = Millis(100);

  const auto t0 = std::chrono::steady_clock::now();
  size_t since_watermark = 0;
  for (size_t i = 0; i < in_order.size();) {
    const size_t m = std::min(batch_size, in_order.size() - i);
    op.OnEvents(std::span<const Event>(in_order.data() + i, m));
    i += m;
    since_watermark += m;
    if (since_watermark >= kWatermarkEvery) {
      since_watermark = 0;
      op.OnWatermark(in_order[i - 1].event_time - lag,
                     in_order[i - 1].arrival_time);
    }
  }
  op.OnWatermark(kMaxTimestamp, in_order.back().arrival_time);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.ns_per_tuple =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(in_order.size());
  out.checksum = sink.checksum;
  out.emissions = sink.emissions;
  return out;
}

void Run() {
  WorkloadConfig cfg = BaseConfig(200000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  std::vector<Event> in_order = w.arrival_order;
  std::stable_sort(in_order.begin(), in_order.end(),
                   [](const Event& a, const Event& b) {
                     return a.event_time < b.event_time;
                   });

  const Shape shapes[] = {
      {"tumbling-50ms", WindowSpec::Tumbling(Millis(50))},
      {"sliding-4x", WindowSpec::Sliding(Millis(200), Millis(50))},
      {"sliding-16x", WindowSpec::Sliding(Millis(800), Millis(50))},
  };
  const AggKind kinds[] = {AggKind::kCount, AggKind::kSum,
                           AggKind::kMean,  AggKind::kMax,
                           AggKind::kVariance, AggKind::kMedian};
  const size_t batch_sizes[] = {1, 64, 1024};

  TableWriter table("R-F18: window-operator hot-path per-tuple cost",
                    {"aggregate", "shape", "batch", "engine", "ns_per_tuple",
                     "mtuples_per_s", "emissions", "checksum"});

  for (AggKind kind : kinds) {
    for (const Shape& shape : shapes) {
      for (size_t batch : batch_sizes) {
        struct EngineRow {
          const char* name;
          WindowedAggregation::Engine engine;
          WindowedAggregation::PaneSharing pane;
        };
        std::vector<EngineRow> engines = {
            {"legacy", WindowedAggregation::Engine::kLegacy,
             WindowedAggregation::PaneSharing::kAuto},
            {"hot", WindowedAggregation::Engine::kHot,
             WindowedAggregation::PaneSharing::kAuto},
        };
        if (IsInlineAggKind(kind) && !PaneMergeIsExact(kind)) {
          engines.push_back({"hot_paned", WindowedAggregation::Engine::kHot,
                             WindowedAggregation::PaneSharing::kForce});
        }
        for (const EngineRow& row : engines) {
          WindowedAggregation::Options opts;
          opts.window = shape.spec;
          opts.aggregate.kind = kind;
          opts.engine = row.engine;
          opts.pane_sharing = row.pane;
          const RunOutcome r = RunOperator(opts, in_order, batch);

          AggregateSpec spec;
          spec.kind = kind;
          table.BeginRow();
          table.Cell(spec.Describe());
          table.Cell(shape.name);
          table.Cell(static_cast<int64_t>(batch));
          table.Cell(row.name);
          table.Cell(r.ns_per_tuple, 2);
          table.Cell(1000.0 / r.ns_per_tuple, 2);
          table.Cell(r.emissions);
          table.Cell(r.checksum, 3);
        }
      }
    }
  }
  EmitTable(table, "f18_hotpath.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
