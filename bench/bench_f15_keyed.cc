/// R-F15 (extension) — Per-key vs global quality-driven buffering under
/// heterogeneous per-key delays.
///
/// Keys 0..7 have exponentially spread delay scales (spread x1..x16). The
/// global buffer meets its aggregate quality target by shedding mostly the
/// slow keys' tuples; per-key buffers enforce the target for every key, and
/// per-key watermarks let fast keys' windows fire without waiting for the
/// slowest key. Reproduced shape: per-key plan equalizes per-key coverage
/// and slashes fast-key response latency, paying with per-key state.

#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  WorkloadConfig cfg = BaseConfig(100000);
  cfg.num_keys = 8;
  cfg.key_delay_spread = 16.0;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 4000.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);

  AggregateSpec sum;
  sum.kind = AggKind::kSum;
  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                               sum);

  TableWriter table(
      "R-F15: global vs per-key quality-driven buffering (8 keys, delay "
      "spread x16, q*=0.95)",
      {"plan", "key", "coverage", "response_p50_ms", "response_p95_ms"});

  for (bool per_key : {false, true}) {
    QueryBuilder builder(per_key ? "per-key" : "global");
    builder.Tumbling(Millis(50)).Aggregate("sum").QualityTarget(0.95, 1.0);
    if (per_key) builder.PerKey();
    QueryExecutor exec(builder.Build());
    VectorSource source(w.arrival_order);
    const RunReport report = exec.Run(&source);
    const QualityReport quality = EvaluateQuality(report.results, oracle);

    std::map<int64_t, std::pair<double, int64_t>> cov;
    for (const WindowQuality& q : quality.per_window) {
      cov[q.key].first += q.coverage;
      cov[q.key].second += 1;
    }
    std::map<int64_t, std::vector<double>> latencies;
    for (const WindowResult& r : report.results) {
      if (!r.is_revision) {
        latencies[r.key].push_back(static_cast<double>(
            std::max<DurationUs>(0, r.emit_stream_time - r.bounds.end)));
      }
    }
    for (const auto& [key, acc] : cov) {
      const DistributionSummary lat = Summarize(latencies[key]);
      table.BeginRow();
      table.Cell(per_key ? "per-key" : "global");
      table.Cell(key);
      table.Cell(acc.first / static_cast<double>(acc.second), 4);
      table.Cell(lat.p50 / 1000.0, 2);
      table.Cell(lat.p95 / 1000.0, 2);
    }
  }
  EmitTable(table, "f15_keyed.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
