/// R-F24 — Pull-based work stealing, adaptive batch sizing, and NUMA-aware
/// arena pools.
///
/// Three sections in one table (CSV: bench_results/f24_scheduler.csv).
/// Every compared pair carries a checksum over its merged output, and the
/// CI gates (tools/check_bench_regression.py, f24 suite) hold the
/// checksums equal: the scheduler switches are performance switches, never
/// semantic ones.
///
///   * section=steal — demand-driven stealing on the adversarial placement
///     case it exists for: the hot keys all hash-colocate on worker 0
///     under static placement (same ColocatedSkewStream as R-F21), with a
///     slow per-tuple sink stalling the worker thread. Static placement
///     serializes the hot worker's sink latency while workers 1..3 sit
///     idle; with --steal the starving workers pull the hot shards at
///     watermark-aligned safe points and the stalls overlap:
///     static/steal wall >= 1.2x (hard), steals > 0, byte-identical
///     output. mode=steal+rebal composes both schedulers and must stay a
///     win over static (steals and migrations may trade off against each
///     other, so only the combined wall clock is gated).
///
///   * section=batch — feed batch sizing on the whole sharded pipeline:
///     fixed sizes {16, 64, 256, 1024} against the PI controller
///     (--adaptive-batch) started from the default 512. The controller
///     cannot beat the best fixed size on a stationary stream — the gate
///     is that it lands within 10% of the best fixed row's throughput
///     (hard) without being told which size that is. batch_end records
///     where the controller settled.
///
///   * section=numa — per-node arena pools on vs off on the same pipeline.
///     On a single-node host (this container, most CI) the set degrades to
///     exactly one pool, so the gate is checksum equality plus
///     no-inversion: the node-detection bookkeeping must stay in the
///     noise (soft).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/parallel_runner.h"
#include "core/pipeline_observer.h"
#include "stream/event.h"
#include "stream/generator.h"
#include "stream/source.h"

namespace streamq {
namespace bench {
namespace {

/// Order-sensitive FNV-style fold (same as R-F19..R-F21).
uint64_t Fold(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v);
  h *= 0x100000001B3ull;
  return h;
}

/// Zipf-keyed, bounded-delay workload: delays < K = 50ms, so nothing is
/// ever late, no revisions fire, and first emissions are invariant to
/// placement, batch size, and steal schedule — the precondition for
/// checksum equality across every compared row.
std::vector<Event> SkewedStream(int64_t n, double zipf_s, uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 10000.0;
  cfg.num_keys = 64;
  cfg.key_zipf_s = zipf_s;
  cfg.delay.model = DelayModel::kUniform;
  cfg.delay.a = 0.0;
  cfg.delay.b = 30000.0;
  cfg.seed = seed;
  return GenerateWorkload(cfg).arrival_order;
}

ContinuousQuery KeyedQuery() {
  ContinuousQuery q;
  q.name = "f24";
  q.handler = DisorderHandlerSpec::Fixed(Millis(50)).PerKey().WithArena(true);
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.per_key_watermarks = true;
  return q;
}

/// Checksum over a merged report's results (already sorted by (start, key,
/// revision)).
uint64_t ResultChecksum(const RunReport& report) {
  uint64_t h = 1469598103934665603ull;
  for (const WindowResult& r : report.results) {
    h = Fold(h, r.bounds.start);
    h = Fold(h, r.key);
    h = Fold(h, static_cast<int64_t>(r.value * 1e6));
    h = Fold(h, r.tuple_count);
  }
  return h;
}

struct Row {
  const char* section;
  const char* config;
  const char* mode;
  size_t workers = 0;
  size_t vshards = 0;
  int64_t events = 0;
  double wall_ms = 0.0;
  int64_t steals = 0;
  int64_t migrations = 0;
  size_t batch_end = 0;
  uint64_t checksum = 0;
};

void EmitRow(TableWriter* table, const Row& r) {
  table->BeginRow();
  table->Cell(r.section);
  table->Cell(r.config);
  table->Cell(r.mode);
  table->Cell(r.workers);
  table->Cell(r.vshards);
  table->Cell(r.events);
  table->Cell(r.wall_ms, 2);
  table->Cell(static_cast<double>(r.events) / r.wall_ms, 1);  // keps
  table->Cell(r.steals);
  table->Cell(r.migrations);
  table->Cell(r.batch_end);
  table->Cell(static_cast<int64_t>(r.checksum));
}

struct Outcome {
  double wall_ms = 0.0;
  int64_t steals = 0;
  int64_t migrations = 0;
  size_t batch_end = 0;
  uint64_t checksum = 0;
};

Outcome RunOnce(const std::vector<Event>& events, size_t workers,
                const ParallelOptions& options, PipelineObserver* observer) {
  ShardedKeyedRunner runner(KeyedQuery(), workers, options);
  if (observer != nullptr) runner.SetObserver(observer);
  VectorSource source(events);
  const RunReport report = runner.Run(&source);
  Outcome out;
  out.wall_ms = report.wall_seconds * 1000.0;
  out.steals = runner.steals();
  out.migrations = runner.migrations();
  out.batch_end = runner.final_batch_size();
  out.checksum = ResultChecksum(report);
  return out;
}

/// Models a slow downstream sink with per-tuple cost: releasing N tuples
/// stalls the WORKER thread ~N * per_tuple_us (same as R-F21's skew
/// section). Sleeps accumulate to >= 200us before being paid so OS timer
/// slack stays negligible.
class SlowSinkObserver : public PipelineObserver {
 public:
  explicit SlowSinkObserver(DurationUs per_tuple_us)
      : per_tuple_us_(per_tuple_us) {}
  void OnHandlerRelease(int64_t released, size_t buffered_after,
                        TimestampUs watermark) override {
    (void)buffered_after;
    (void)watermark;
    if (per_tuple_us_ == 0 || released <= 0) return;
    thread_local DurationUs pending = 0;
    pending += released * per_tuple_us_;
    if (pending >= 200) {
      std::this_thread::sleep_for(std::chrono::microseconds(pending));
      pending = 0;
    }
  }

 private:
  DurationUs per_tuple_us_;
};

/// The adversarial placement case (identical construction to R-F21): four
/// hot keys whose shards — 0, 4, 8, 12 of 16 — ALL land on worker 0 under
/// placement[v] = v % 4, plus twelve cold keys on the other workers.
std::vector<Event> ColocatedSkewStream(int64_t n, uint64_t seed) {
  std::vector<Event> events = SkewedStream(n, /*zipf_s=*/0.0, seed);
  constexpr size_t kShards = 16;
  constexpr size_t kWorkers = 4;
  std::vector<int64_t> hot_key_for_shard(kShards, -1);
  std::vector<int64_t> cold_keys;
  size_t hot_found = 0;
  for (int64_t key = 0; hot_found < kWorkers || cold_keys.size() < 12;
       ++key) {
    const size_t shard = ShardedKeyedRunner::ShardOf(key, kShards);
    if (shard % kWorkers == 0) {
      if (hot_key_for_shard[shard] < 0) {
        hot_key_for_shard[shard] = key;
        ++hot_found;
      }
    } else if (cold_keys.size() < 12) {
      cold_keys.push_back(key);
    }
  }
  const int64_t hot_keys[] = {hot_key_for_shard[0], hot_key_for_shard[4],
                              hot_key_for_shard[8], hot_key_for_shard[12]};
  for (Event& e : events) {
    const int64_t k = e.key;  // Uniform in [0, 64).
    e.key = k < 38 ? hot_keys[k % 4]
                   : cold_keys[static_cast<size_t>(k - 38) % cold_keys.size()];
  }
  return events;
}

// -------------------------------------------------------------- section=steal

void StealSection(TableWriter* table) {
  const std::vector<Event> events = ColocatedSkewStream(60000, 99);
  constexpr size_t kWorkers = 4;
  ParallelOptions static_opts;
  static_opts.batch_size = 64;
  static_opts.virtual_shards = 16;
  ParallelOptions steal_opts = static_opts;
  steal_opts.steal = true;
  steal_opts.steal_min_backlog = 256;
  ParallelOptions both_opts = steal_opts;
  both_opts.rebalance = true;
  both_opts.rebalance_interval_batches = 16;
  both_opts.rebalance_threshold = 1.2;

  SlowSinkObserver observer(/*per_tuple_us=*/20);
  constexpr int kReps = 2;
  Outcome best_static, best_steal, best_both;
  for (int rep = 0; rep < kReps; ++rep) {  // Interleaved min-of-N.
    const Outcome s = RunOnce(events, kWorkers, static_opts, &observer);
    const Outcome t = RunOnce(events, kWorkers, steal_opts, &observer);
    const Outcome b = RunOnce(events, kWorkers, both_opts, &observer);
    if (rep == 0 || s.wall_ms < best_static.wall_ms) best_static = s;
    if (rep == 0 || t.wall_ms < best_steal.wall_ms) best_steal = t;
    if (rep == 0 || b.wall_ms < best_both.wall_ms) best_both = b;
  }
  struct Labeled {
    const char* mode;
    Outcome out;
  };
  for (const Labeled& l : {Labeled{"static", best_static},
                           Labeled{"steal", best_steal},
                           Labeled{"steal+rebal", best_both}}) {
    Row row{.section = "steal", .config = "sink-latency", .mode = l.mode};
    row.workers = kWorkers;
    row.vshards = 16;
    row.events = static_cast<int64_t>(events.size());
    row.wall_ms = l.out.wall_ms;
    row.steals = l.out.steals;
    row.migrations = l.out.migrations;
    row.batch_end = l.out.batch_end;
    row.checksum = l.out.checksum;
    EmitRow(table, row);
  }
}

// -------------------------------------------------------------- section=batch

void BatchSection(TableWriter* table) {
  const std::vector<Event> events = SkewedStream(400000, 1.2, 2015);
  constexpr size_t kWorkers = 3;
  ParallelOptions base;
  base.virtual_shards = 12;

  constexpr int kReps = 3;
  const size_t fixed_sizes[] = {16, 64, 256, 1024};
  Outcome best_fixed[4];
  Outcome best_adaptive;
  for (int rep = 0; rep < kReps; ++rep) {  // Interleaved min-of-N.
    for (size_t i = 0; i < 4; ++i) {
      ParallelOptions opts = base;
      opts.batch_size = fixed_sizes[i];
      // Keep the controller rails out of the way of the sweep itself.
      const Outcome o = RunOnce(events, kWorkers, opts, nullptr);
      if (rep == 0 || o.wall_ms < best_fixed[i].wall_ms) best_fixed[i] = o;
    }
    ParallelOptions adaptive = base;
    adaptive.batch_size = 512;  // Controller's starting point, not a hint.
    adaptive.adaptive_batch = true;
    const Outcome a = RunOnce(events, kWorkers, adaptive, nullptr);
    if (rep == 0 || a.wall_ms < best_adaptive.wall_ms) best_adaptive = a;
  }
  for (size_t i = 0; i < 4; ++i) {
    char mode[24];
    std::snprintf(mode, sizeof(mode), "fixed-%zu", fixed_sizes[i]);
    Row row{.section = "batch", .config = "zipf-keyed", .mode = mode};
    row.workers = kWorkers;
    row.vshards = 12;
    row.events = static_cast<int64_t>(events.size());
    row.wall_ms = best_fixed[i].wall_ms;
    row.batch_end = fixed_sizes[i];
    row.checksum = best_fixed[i].checksum;
    EmitRow(table, row);
  }
  Row row{.section = "batch", .config = "zipf-keyed", .mode = "adaptive"};
  row.workers = kWorkers;
  row.vshards = 12;
  row.events = static_cast<int64_t>(events.size());
  row.wall_ms = best_adaptive.wall_ms;
  row.batch_end = best_adaptive.batch_end;
  row.checksum = best_adaptive.checksum;
  EmitRow(table, row);
}

// --------------------------------------------------------------- section=numa

void NumaSection(TableWriter* table) {
  const std::vector<Event> events = SkewedStream(400000, 1.2, 404);
  constexpr size_t kWorkers = 3;
  ParallelOptions base;
  base.batch_size = 64;
  base.virtual_shards = 12;

  constexpr int kReps = 3;
  Outcome best_flat, best_numa;
  for (int rep = 0; rep < kReps; ++rep) {  // Interleaved min-of-N.
    const Outcome f = RunOnce(events, kWorkers, base, nullptr);
    ParallelOptions numa_opts = base;
    numa_opts.numa_arena = true;
    const Outcome n = RunOnce(events, kWorkers, numa_opts, nullptr);
    if (rep == 0 || f.wall_ms < best_flat.wall_ms) best_flat = f;
    if (rep == 0 || n.wall_ms < best_numa.wall_ms) best_numa = n;
  }
  struct Labeled {
    const char* mode;
    Outcome out;
  };
  for (const Labeled& l :
       {Labeled{"flat", best_flat}, Labeled{"numa", best_numa}}) {
    Row row{.section = "numa", .config = "zipf-keyed", .mode = l.mode};
    row.workers = kWorkers;
    row.vshards = 12;
    row.events = static_cast<int64_t>(events.size());
    row.wall_ms = l.out.wall_ms;
    row.batch_end = l.out.batch_end;
    row.checksum = l.out.checksum;
    EmitRow(table, row);
  }
}

void Run() {
  TableWriter table(
      "R-F24: pull-based scheduler — work stealing under colocated skew, "
      "adaptive feed batch sizing, NUMA-aware arena pools",
      {"section", "config", "mode", "workers", "vshards", "events",
       "wall_ms", "keps", "steals", "migrations", "batch_end", "checksum"});
  StealSection(&table);
  BatchSection(&table);
  NumaSection(&table);
  EmitTable(table, "f24_scheduler.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
