/// R-F10 — Quality-driven execution per aggregate function.
///
/// Runs AQ-K-slack at q* = 0.90 for each aggregate, twice: with the naive
/// identity (coverage) model and with the aggregate-aware power model (the
/// library's default wiring). Reproduced shape: for robust aggregates
/// (max/min/quantiles) the aggregate-aware model buffers far less for the
/// same delivered value quality; for sum/count the two coincide.

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  WorkloadConfig cfg = BaseConfig(60000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);

  TableWriter table(
      "R-F10: per-aggregate quality-driven execution (q*=0.90)",
      {"aggregate", "model", "gamma", "value_quality", "coverage",
       "latency_mean_ms", "final_K_ms"});

  const AggKind kinds[] = {AggKind::kSum,    AggKind::kCount,
                           AggKind::kMean,   AggKind::kMax,
                           AggKind::kMin,    AggKind::kMedian,
                           AggKind::kQuantile};

  for (AggKind kind : kinds) {
    WindowedAggregation::Options wopts;
    wopts.window = WindowSpec::Tumbling(Millis(50));
    wopts.aggregate.kind = kind;
    wopts.aggregate.quantile_q = 0.9;
    const OracleEvaluator oracle(w.arrival_order, wopts.window,
                                 wopts.aggregate);

    for (bool aggregate_aware : {false, true}) {
      const double gamma =
          aggregate_aware ? DefaultQualityGamma(kind) : 1.0;
      AqKSlack::Options options;
      options.target_quality = 0.90;
      ContinuousQuery q;
      q.name = "f10";
      q.handler = DisorderHandlerSpec::Aq(options, gamma);
      q.window = wopts;
      const ScoredRun r = RunScored(q, w, oracle);

      table.BeginRow();
      table.Cell(wopts.aggregate.Describe());
      table.Cell(aggregate_aware ? "aggregate-aware" : "coverage");
      table.Cell(gamma, 2);
      table.Cell(r.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(r.quality.coverage.mean, 4);
      table.Cell(r.report.handler_stats.buffering_latency_us.mean() / 1000.0,
                 3);
      table.Cell(ToMillis(r.report.final_slack), 2);
    }
  }
  EmitTable(table, "f10_per_aggregate.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
