/// R-F12 (extension) — Shared vs independent execution of concurrent
/// quality-driven queries over one stream.
///
/// N queries with mixed quality targets run (a) each with its own buffer
/// and (b) behind one shared buffer sized for the strictest target.
/// Reproduced shape: sharing keeps every target met and costs one buffer
/// instead of N (memory, throughput win), but loose-target queries inherit
/// the strict query's latency — the latency column quantifies the rent.

#include <iostream>

#include "bench/bench_util.h"
#include "core/multi_query.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  WorkloadConfig cfg = BaseConfig(80000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);

  const double targets[] = {0.80, 0.90, 0.95, 0.99};
  auto make_queries = [&] {
    std::vector<ContinuousQuery> queries;
    for (double t : targets) {
      char name[32];
      std::snprintf(name, sizeof(name), "q%.2f", t);
      queries.push_back(QueryBuilder(name)
                            .Tumbling(Millis(50))
                            .Aggregate("sum")
                            .QualityTarget(t, /*gamma=*/1.0)
                            .Build());
    }
    return queries;
  };

  AggregateSpec sum;
  sum.kind = AggKind::kSum;
  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                               sum);

  TableWriter table(
      "R-F12: shared vs independent execution of 4 concurrent queries",
      {"plan", "query", "value_quality", "buf_latency_mean_ms",
       "peak_buffer_tuples", "wall_ms_total"});

  for (auto plan : {MultiQueryRunner::Plan::kIndependent,
                    MultiQueryRunner::Plan::kSharedHandler}) {
    MultiQueryRunner runner(plan);
    for (const ContinuousQuery& q : make_queries()) runner.AddQuery(q);
    VectorSource source(w.arrival_order);
    const auto reports = runner.Run(&source);

    for (const RunReport& r : reports) {
      const QualityReport quality = EvaluateQuality(r.results, oracle);
      table.BeginRow();
      table.Cell(plan == MultiQueryRunner::Plan::kIndependent ? "independent"
                                                              : "shared");
      table.Cell(r.query_name);
      table.Cell(quality.MeanQualityIncludingMissed(), 4);
      table.Cell(r.handler_stats.buffering_latency_us.mean() / 1000.0, 3);
      table.Cell(r.handler_stats.max_buffer_size);
      table.Cell(r.wall_seconds * 1000.0, 1);
    }
  }
  EmitTable(table, "f12_sharing.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
