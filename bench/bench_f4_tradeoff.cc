/// R-F4 — The latency/quality trade-off of fixed K-slack.
///
/// Sweeps the buffer bound K on three stationary delay distributions and
/// reports, per point, the mean/p95 buffering latency and the achieved
/// coverage and value quality. This is the curve that motivates the paper:
/// quality saturates while latency keeps growing linearly in K, and the
/// "right" K differs per distribution — hence drive the buffer by quality,
/// not by K.

#include <iostream>

#include "bench/bench_util.h"

namespace streamq {
namespace bench {
namespace {

void Run() {
  const int64_t kNumEvents = 100000;
  TableWriter table("R-F4: fixed K-slack latency vs quality trade-off",
                    {"workload", "K_ms", "buf_latency_mean_ms",
                     "buf_latency_p95_ms", "coverage", "value_quality",
                     "late_frac"});

  WindowedAggregation::Options wopts;
  wopts.window = WindowSpec::Tumbling(Millis(50));
  wopts.aggregate.kind = AggKind::kSum;

  for (const NamedWorkload& nw : StandardWorkloads(kNumEvents)) {
    // Stationary regimes only: the trade-off curve is a stationary concept.
    if (nw.config.dynamics.kind != DynamicsKind::kStationary) continue;
    const GeneratedWorkload w = GenerateWorkload(nw.config);
    const OracleEvaluator oracle(w.arrival_order, wopts.window,
                                 wopts.aggregate);

    for (DurationUs k :
         {Millis(0), Millis(2), Millis(5), Millis(10), Millis(20), Millis(40),
          Millis(80), Millis(160), Millis(320)}) {
      ContinuousQuery q;
      q.name = "f4";
      q.handler = DisorderHandlerSpec::Fixed(k);
      q.window = wopts;
      const ScoredRun run = RunScored(q, w, oracle);
      const DistributionSummary lat =
          Summarize(run.report.handler_stats.latency_samples);
      table.BeginRow();
      table.Cell(nw.name);
      table.Cell(ToMillis(k), 0);
      table.Cell(lat.mean / 1000.0, 3);
      table.Cell(lat.p95 / 1000.0, 3);
      table.Cell(run.quality.coverage.mean, 4);
      table.Cell(run.quality.MeanQualityIncludingMissed(), 4);
      table.Cell(static_cast<double>(run.report.handler_stats.events_late) /
                     static_cast<double>(run.report.handler_stats.events_in),
                 4);
    }
  }
  EmitTable(table, "f4_tradeoff.csv");
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
