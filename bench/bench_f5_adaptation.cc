/// R-F5 — Buffer-bound adaptation under a disorder regime change.
///
/// Runs fixed K-slack, MP-K-slack (sliding max) and AQ-K-slack over a
/// stream whose delay scale steps up x5 mid-stream, and prints the slack K
/// each operator uses over time. The reproduced shape: fixed K is flat (and
/// wrong on one side of the step); MP-K-slack jumps to the new max and stays
/// pinned to worst case; AQ-K-slack settles at the (much lower) quantile the
/// quality target requires, on both sides of the step.

#include <iostream>

#include "bench/bench_util.h"
#include "disorder/event_sink.h"

namespace streamq {
namespace bench {
namespace {

struct SlackSample {
  TimestampUs stream_time;
  DurationUs k;
};

/// Runs a raw handler over the stream, sampling current_slack() every
/// `sample_every` tuples.
std::vector<SlackSample> TraceSlack(DisorderHandler* handler,
                                    const std::vector<Event>& arrivals,
                                    int64_t sample_every) {
  CountingSink sink;
  std::vector<SlackSample> samples;
  int64_t i = 0;
  for (const Event& e : arrivals) {
    handler->OnEvent(e, &sink);
    if (++i % sample_every == 0) {
      samples.push_back({e.arrival_time, handler->current_slack()});
    }
  }
  handler->Flush(&sink);
  return samples;
}

void Run() {
  WorkloadConfig cfg = BaseConfig(100000);
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 10000.0;
  cfg.dynamics.kind = DynamicsKind::kStep;
  cfg.dynamics.factor = 5.0;
  cfg.dynamics.t0 = Seconds(5);
  const GeneratedWorkload w = GenerateWorkload(cfg);

  const int64_t kSampleEvery = 2000;

  FixedKSlack fixed(Millis(30), /*collect_latency_samples=*/false);
  MpKSlack::Options mp_options;
  mp_options.collect_latency_samples = false;
  MpKSlack mp(mp_options);
  AqKSlack::Options aq_options;
  aq_options.target_quality = 0.95;
  aq_options.collect_latency_samples = false;
  AqKSlack aq(aq_options);

  const auto fixed_trace = TraceSlack(&fixed, w.arrival_order, kSampleEvery);
  const auto mp_trace = TraceSlack(&mp, w.arrival_order, kSampleEvery);
  const auto aq_trace = TraceSlack(&aq, w.arrival_order, kSampleEvery);

  TableWriter table(
      "R-F5: slack K over time under a x5 delay step at t=5s (q*=0.95)",
      {"stream_time_s", "fixed_K_ms", "mp_kslack_K_ms", "aq_kslack_K_ms"});
  for (size_t i = 0; i < aq_trace.size(); ++i) {
    table.BeginRow();
    table.Cell(ToSeconds(aq_trace[i].stream_time), 2);
    table.Cell(ToMillis(fixed_trace[i].k), 2);
    table.Cell(ToMillis(mp_trace[i].k), 2);
    table.Cell(ToMillis(aq_trace[i].k), 2);
  }
  EmitTable(table, "f5_adaptation.csv");

  std::cout << "fixed:     " << fixed.stats().ToString() << "\n"
            << "mp-kslack: " << mp.stats().ToString() << "\n"
            << "aq-kslack: " << aq.stats().ToString() << std::endl;
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
