/// R-F22 — Service path: multi-tenant server + network load generator.
///
/// One table (CSV: bench_results/f22_service.csv), one row per client
/// count, fixed tenants. Each cell is a full loadgen run against an
/// in-process StreamQServer over loopback TCP: register 8 tenants, drive
/// the same seeded per-tenant workloads through 1..8 rate-paced client
/// connections, seal every tenant, and fold the per-tenant result
/// checksums.
///
/// Two properties, gated by tools/check_bench_regression.py (f22 suite):
///
///   * Determinism — with clients <= tenants every tenant has a single
///     writer, so each tenant sees the exact same byte stream no matter
///     how many clients carry it. The combined checksum must be identical
///     across ALL rows, every row's accounting identity
///     (in == out + late + shed) must hold, delivery must be exact
///     (sent == ingested), and errors must be zero.
///
///   * Scaling — pacing is per client (each connection sleeps between
///     batches like a real rate-limited feed), so the sleeps of concurrent
///     clients overlap and wall time drops ~1/clients even on one core:
///     the same property the MPSC section of R-F21 gates, here measured
///     through the full socket + frame + session path. clients=4 must
///     reach >= 1.3x the throughput of clients=1 (hard; ideal is ~4x);
///     clients=8 falling behind clients=4 is a soft warning.
///
/// The rate (100k events/s per client, batch 512 => one send per ~5.1 ms)
/// is chosen so the pacing sleep dominates per-batch server work by >10x
/// on any plausible machine: the sweep measures connection-level
/// concurrency, not aggregation speed.

#include <cstdint>

#include "bench/bench_util.h"
#include "net/loadgen.h"
#include "net/server.h"

namespace streamq {
namespace bench {
namespace {

constexpr int kTenants = 8;
constexpr int64_t kEventsPerTenant = 20000;
constexpr double kRatePerClient = 100000.0;

void Run() {
  StreamQServer server;
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "server start failed: " << started.ToString() << "\n";
    std::exit(1);
  }

  TableWriter table(
      "R-F22: service path — loadgen throughput and tail latency vs client "
      "connections (8 tenants, paced clients, loopback TCP)",
      {"clients", "tenants", "events", "rate_eps", "batch", "wall_ms", "keps",
       "rtt_p50_us", "rtt_p99_us", "errors", "identities", "deliveries",
       "checksum"});

  for (int clients : {1, 2, 4, 8}) {
    LoadGenOptions options;
    options.port = server.port();
    options.clients = clients;
    options.tenants = kTenants;
    options.events_per_tenant = kEventsPerTenant;
    options.rate_eps = kRatePerClient;
    options.batch = 512;
    options.seed = 42;

    constexpr int kReps = 2;  // Best-of-N: pacing makes reps near-identical,
                              // the min shrugs off scheduler hiccups.
    LoadGenReport best;
    for (int rep = 0; rep < kReps; ++rep) {
      Result<LoadGenReport> run = RunLoadGen(options);
      if (!run.ok()) {
        std::cerr << "loadgen failed (clients=" << clients
                  << "): " << run.status().ToString() << "\n";
        std::exit(1);
      }
      if (rep == 0 || run.value().wall_s < best.wall_s) {
        best = std::move(run).value();
      }
    }

    table.BeginRow();
    table.Cell(static_cast<int64_t>(clients));
    table.Cell(static_cast<int64_t>(kTenants));
    table.Cell(best.events_sent);
    table.Cell(kRatePerClient, 0);
    table.Cell(static_cast<int64_t>(options.batch));
    table.Cell(best.wall_s * 1000.0, 2);
    table.Cell(best.throughput_eps / 1000.0, 1);
    table.Cell(best.rtt_p50_us, 1);
    table.Cell(best.rtt_p99_us, 1);
    table.Cell(best.errors);
    table.Cell(static_cast<int64_t>(best.all_identities_ok ? 1 : 0));
    table.Cell(static_cast<int64_t>(best.all_deliveries_ok ? 1 : 0));
    table.Cell(static_cast<int64_t>(best.combined_checksum));
  }

  EmitTable(table, "f22_service.csv");
  server.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace streamq

int main() {
  streamq::bench::Run();
  return 0;
}
