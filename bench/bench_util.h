#ifndef STREAMQ_BENCH_BENCH_UTIL_H_
#define STREAMQ_BENCH_BENCH_UTIL_H_

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table_writer.h"
#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/generator.h"

namespace streamq {
namespace bench {

/// Named workload regimes shared by the experiment harnesses, mirroring the
/// workload mix a SIGMOD evaluation of this operator family uses: a
/// light-tailed base case, heavier-tailed distributions, and non-stationary
/// dynamics that stress adaptation.
struct NamedWorkload {
  std::string name;
  WorkloadConfig config;
};

inline WorkloadConfig BaseConfig(int64_t num_events) {
  WorkloadConfig cfg;
  cfg.num_events = num_events;
  cfg.events_per_second = 10000.0;
  cfg.value.model = ValueModel::kUniform;
  cfg.value.a = 0.5;
  cfg.value.b = 1.5;
  cfg.seed = 2015;
  return cfg;
}

inline std::vector<NamedWorkload> StandardWorkloads(int64_t num_events) {
  std::vector<NamedWorkload> out;

  {
    NamedWorkload w{"exp-20ms", BaseConfig(num_events)};
    w.config.delay.model = DelayModel::kExponential;
    w.config.delay.a = 20000.0;
    out.push_back(w);
  }
  {
    NamedWorkload w{"lognormal", BaseConfig(num_events)};
    w.config.delay.model = DelayModel::kLogNormal;
    w.config.delay.a = 9.5;  // Median ~13ms.
    w.config.delay.b = 1.0;
    out.push_back(w);
  }
  {
    NamedWorkload w{"pareto-heavy", BaseConfig(num_events)};
    w.config.delay.model = DelayModel::kPareto;
    w.config.delay.a = 2000.0;
    w.config.delay.b = 1.5;
    out.push_back(w);
  }
  {
    NamedWorkload w{"step-x5", BaseConfig(num_events)};
    w.config.delay.model = DelayModel::kExponential;
    w.config.delay.a = 10000.0;
    w.config.dynamics.kind = DynamicsKind::kStep;
    w.config.dynamics.factor = 5.0;
    w.config.dynamics.t0 =
        static_cast<TimestampUs>(num_events / 2 * 100);  // Mid-stream.
    out.push_back(w);
  }
  {
    NamedWorkload w{"burst-x8", BaseConfig(num_events)};
    w.config.delay.model = DelayModel::kExponential;
    w.config.delay.a = 10000.0;
    w.config.dynamics.kind = DynamicsKind::kBurst;
    w.config.dynamics.factor = 8.0;
    w.config.dynamics.t0 = Seconds(1);
    w.config.dynamics.period = Seconds(2);
    w.config.dynamics.duration = Millis(400);
    out.push_back(w);
  }
  {
    NamedWorkload w{"sine", BaseConfig(num_events)};
    w.config.delay.model = DelayModel::kExponential;
    w.config.delay.a = 15000.0;
    w.config.dynamics.kind = DynamicsKind::kSine;
    w.config.dynamics.amplitude = 0.8;
    w.config.dynamics.period = Seconds(2);
    out.push_back(w);
  }
  return out;
}

/// Result of one (query, workload) execution scored against the oracle.
struct ScoredRun {
  RunReport report;
  QualityReport quality;
};

inline ScoredRun RunScored(const ContinuousQuery& query,
                           const GeneratedWorkload& workload,
                           const OracleEvaluator& oracle) {
  QueryExecutor exec(query);
  VectorSource source(workload.arrival_order);
  ScoredRun out;
  out.report = exec.Run(&source);
  out.quality = EvaluateQuality(out.report.results, oracle);
  return out;
}

/// Prints the table to stdout and saves its CSV under bench_results/.
inline void EmitTable(const TableWriter& table, const std::string& csv_name) {
  table.Print(std::cout);
  std::cout << std::endl;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    std::ofstream out("bench_results/" + csv_name);
    out << table.ToCsv();
  }
}

/// Binary-searches the smallest fixed K achieving mean quality >= target on
/// this workload — the "offline oracle tuning" baseline: the best a static
/// configuration could do with perfect hindsight.
inline DurationUs OracleTunedFixedK(const GeneratedWorkload& workload,
                                    const OracleEvaluator& oracle,
                                    const WindowedAggregation::Options& wopts,
                                    double target) {
  DurationUs lo = 0, hi = Millis(1);
  auto quality_at = [&](DurationUs k) {
    ContinuousQuery q;
    q.name = "tuning";
    q.handler = DisorderHandlerSpec::Fixed(k);
    q.window = wopts;
    return RunScored(q, workload, oracle).quality.MeanQualityIncludingMissed();
  };
  while (quality_at(hi) < target && hi < Seconds(300)) hi *= 2;
  while (hi - lo > Millis(1)) {
    const DurationUs mid = lo + (hi - lo) / 2;
    if (quality_at(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace bench
}  // namespace streamq

#endif  // STREAMQ_BENCH_BENCH_UTIL_H_
