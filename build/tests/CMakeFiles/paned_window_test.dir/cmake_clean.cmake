file(REMOVE_RECURSE
  "CMakeFiles/paned_window_test.dir/paned_window_test.cc.o"
  "CMakeFiles/paned_window_test.dir/paned_window_test.cc.o.d"
  "paned_window_test"
  "paned_window_test.pdb"
  "paned_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paned_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
