# Empty compiler generated dependencies file for paned_window_test.
# This may be replaced when dependencies are built.
