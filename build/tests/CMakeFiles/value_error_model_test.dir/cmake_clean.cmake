file(REMOVE_RECURSE
  "CMakeFiles/value_error_model_test.dir/value_error_model_test.cc.o"
  "CMakeFiles/value_error_model_test.dir/value_error_model_test.cc.o.d"
  "value_error_model_test"
  "value_error_model_test.pdb"
  "value_error_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_error_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
