# Empty compiler generated dependencies file for value_error_model_test.
# This may be replaced when dependencies are built.
