file(REMOVE_RECURSE
  "CMakeFiles/pi_controller_test.dir/pi_controller_test.cc.o"
  "CMakeFiles/pi_controller_test.dir/pi_controller_test.cc.o.d"
  "pi_controller_test"
  "pi_controller_test.pdb"
  "pi_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
