# Empty dependencies file for pi_controller_test.
# This may be replaced when dependencies are built.
