# Empty compiler generated dependencies file for lb_kslack_test.
# This may be replaced when dependencies are built.
