file(REMOVE_RECURSE
  "CMakeFiles/lb_kslack_test.dir/lb_kslack_test.cc.o"
  "CMakeFiles/lb_kslack_test.dir/lb_kslack_test.cc.o.d"
  "lb_kslack_test"
  "lb_kslack_test.pdb"
  "lb_kslack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_kslack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
