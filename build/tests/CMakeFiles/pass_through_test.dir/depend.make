# Empty dependencies file for pass_through_test.
# This may be replaced when dependencies are built.
