file(REMOVE_RECURSE
  "CMakeFiles/pass_through_test.dir/pass_through_test.cc.o"
  "CMakeFiles/pass_through_test.dir/pass_through_test.cc.o.d"
  "pass_through_test"
  "pass_through_test.pdb"
  "pass_through_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_through_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
