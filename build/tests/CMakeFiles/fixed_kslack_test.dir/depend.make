# Empty dependencies file for fixed_kslack_test.
# This may be replaced when dependencies are built.
