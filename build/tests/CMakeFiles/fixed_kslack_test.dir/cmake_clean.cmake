file(REMOVE_RECURSE
  "CMakeFiles/fixed_kslack_test.dir/fixed_kslack_test.cc.o"
  "CMakeFiles/fixed_kslack_test.dir/fixed_kslack_test.cc.o.d"
  "fixed_kslack_test"
  "fixed_kslack_test.pdb"
  "fixed_kslack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_kslack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
