# Empty compiler generated dependencies file for window_operator_test.
# This may be replaced when dependencies are built.
