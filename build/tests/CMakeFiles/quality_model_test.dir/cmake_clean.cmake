file(REMOVE_RECURSE
  "CMakeFiles/quality_model_test.dir/quality_model_test.cc.o"
  "CMakeFiles/quality_model_test.dir/quality_model_test.cc.o.d"
  "quality_model_test"
  "quality_model_test.pdb"
  "quality_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
