# Empty dependencies file for aq_kslack_test.
# This may be replaced when dependencies are built.
