file(REMOVE_RECURSE
  "CMakeFiles/aq_kslack_test.dir/aq_kslack_test.cc.o"
  "CMakeFiles/aq_kslack_test.dir/aq_kslack_test.cc.o.d"
  "aq_kslack_test"
  "aq_kslack_test.pdb"
  "aq_kslack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_kslack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
