# Empty dependencies file for disorder_metrics_test.
# This may be replaced when dependencies are built.
