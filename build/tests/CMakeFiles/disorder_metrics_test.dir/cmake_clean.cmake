file(REMOVE_RECURSE
  "CMakeFiles/disorder_metrics_test.dir/disorder_metrics_test.cc.o"
  "CMakeFiles/disorder_metrics_test.dir/disorder_metrics_test.cc.o.d"
  "disorder_metrics_test"
  "disorder_metrics_test.pdb"
  "disorder_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disorder_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
