# Empty dependencies file for keyed_watermark_window_test.
# This may be replaced when dependencies are built.
