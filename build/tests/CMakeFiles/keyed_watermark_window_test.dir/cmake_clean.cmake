file(REMOVE_RECURSE
  "CMakeFiles/keyed_watermark_window_test.dir/keyed_watermark_window_test.cc.o"
  "CMakeFiles/keyed_watermark_window_test.dir/keyed_watermark_window_test.cc.o.d"
  "keyed_watermark_window_test"
  "keyed_watermark_window_test.pdb"
  "keyed_watermark_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_watermark_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
