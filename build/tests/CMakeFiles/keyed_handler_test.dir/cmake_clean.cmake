file(REMOVE_RECURSE
  "CMakeFiles/keyed_handler_test.dir/keyed_handler_test.cc.o"
  "CMakeFiles/keyed_handler_test.dir/keyed_handler_test.cc.o.d"
  "keyed_handler_test"
  "keyed_handler_test.pdb"
  "keyed_handler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_handler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
