# Empty dependencies file for keyed_handler_test.
# This may be replaced when dependencies are built.
