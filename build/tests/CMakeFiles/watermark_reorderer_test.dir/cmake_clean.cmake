file(REMOVE_RECURSE
  "CMakeFiles/watermark_reorderer_test.dir/watermark_reorderer_test.cc.o"
  "CMakeFiles/watermark_reorderer_test.dir/watermark_reorderer_test.cc.o.d"
  "watermark_reorderer_test"
  "watermark_reorderer_test.pdb"
  "watermark_reorderer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watermark_reorderer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
