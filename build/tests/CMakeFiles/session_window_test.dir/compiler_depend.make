# Empty compiler generated dependencies file for session_window_test.
# This may be replaced when dependencies are built.
