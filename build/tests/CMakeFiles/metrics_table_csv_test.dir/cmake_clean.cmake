file(REMOVE_RECURSE
  "CMakeFiles/metrics_table_csv_test.dir/metrics_table_csv_test.cc.o"
  "CMakeFiles/metrics_table_csv_test.dir/metrics_table_csv_test.cc.o.d"
  "metrics_table_csv_test"
  "metrics_table_csv_test.pdb"
  "metrics_table_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_table_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
