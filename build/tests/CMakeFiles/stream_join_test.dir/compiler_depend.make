# Empty compiler generated dependencies file for stream_join_test.
# This may be replaced when dependencies are built.
