file(REMOVE_RECURSE
  "CMakeFiles/stream_join_test.dir/stream_join_test.cc.o"
  "CMakeFiles/stream_join_test.dir/stream_join_test.cc.o.d"
  "stream_join_test"
  "stream_join_test.pdb"
  "stream_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
