file(REMOVE_RECURSE
  "CMakeFiles/mp_kslack_test.dir/mp_kslack_test.cc.o"
  "CMakeFiles/mp_kslack_test.dir/mp_kslack_test.cc.o.d"
  "mp_kslack_test"
  "mp_kslack_test.pdb"
  "mp_kslack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_kslack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
