# Empty dependencies file for mp_kslack_test.
# This may be replaced when dependencies are built.
