file(REMOVE_RECURSE
  "CMakeFiles/user_sessions.dir/user_sessions.cc.o"
  "CMakeFiles/user_sessions.dir/user_sessions.cc.o.d"
  "user_sessions"
  "user_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
