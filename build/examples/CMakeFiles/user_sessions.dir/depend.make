# Empty dependencies file for user_sessions.
# This may be replaced when dependencies are built.
