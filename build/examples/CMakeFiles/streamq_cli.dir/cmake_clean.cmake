file(REMOVE_RECURSE
  "CMakeFiles/streamq_cli.dir/streamq_cli.cc.o"
  "CMakeFiles/streamq_cli.dir/streamq_cli.cc.o.d"
  "streamq_cli"
  "streamq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
