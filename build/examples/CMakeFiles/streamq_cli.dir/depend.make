# Empty dependencies file for streamq_cli.
# This may be replaced when dependencies are built.
