file(REMOVE_RECURSE
  "CMakeFiles/trading_dashboard.dir/trading_dashboard.cc.o"
  "CMakeFiles/trading_dashboard.dir/trading_dashboard.cc.o.d"
  "trading_dashboard"
  "trading_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trading_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
