# Empty compiler generated dependencies file for trading_dashboard.
# This may be replaced when dependencies are built.
