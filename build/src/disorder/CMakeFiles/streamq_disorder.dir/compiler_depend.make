# Empty compiler generated dependencies file for streamq_disorder.
# This may be replaced when dependencies are built.
