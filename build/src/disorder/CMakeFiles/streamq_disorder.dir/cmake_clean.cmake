file(REMOVE_RECURSE
  "CMakeFiles/streamq_disorder.dir/aq_kslack.cc.o"
  "CMakeFiles/streamq_disorder.dir/aq_kslack.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/buffered_handler_base.cc.o"
  "CMakeFiles/streamq_disorder.dir/buffered_handler_base.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/disorder_handler.cc.o"
  "CMakeFiles/streamq_disorder.dir/disorder_handler.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/fixed_kslack.cc.o"
  "CMakeFiles/streamq_disorder.dir/fixed_kslack.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/handler_factory.cc.o"
  "CMakeFiles/streamq_disorder.dir/handler_factory.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/keyed_handler.cc.o"
  "CMakeFiles/streamq_disorder.dir/keyed_handler.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/lb_kslack.cc.o"
  "CMakeFiles/streamq_disorder.dir/lb_kslack.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/mp_kslack.cc.o"
  "CMakeFiles/streamq_disorder.dir/mp_kslack.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/pass_through.cc.o"
  "CMakeFiles/streamq_disorder.dir/pass_through.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/quality_model.cc.o"
  "CMakeFiles/streamq_disorder.dir/quality_model.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/reorder_buffer.cc.o"
  "CMakeFiles/streamq_disorder.dir/reorder_buffer.cc.o.d"
  "CMakeFiles/streamq_disorder.dir/watermark_reorderer.cc.o"
  "CMakeFiles/streamq_disorder.dir/watermark_reorderer.cc.o.d"
  "libstreamq_disorder.a"
  "libstreamq_disorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_disorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
