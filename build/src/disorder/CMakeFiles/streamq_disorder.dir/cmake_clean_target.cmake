file(REMOVE_RECURSE
  "libstreamq_disorder.a"
)
