
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disorder/aq_kslack.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/aq_kslack.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/aq_kslack.cc.o.d"
  "/root/repo/src/disorder/buffered_handler_base.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/buffered_handler_base.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/buffered_handler_base.cc.o.d"
  "/root/repo/src/disorder/disorder_handler.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/disorder_handler.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/disorder_handler.cc.o.d"
  "/root/repo/src/disorder/fixed_kslack.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/fixed_kslack.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/fixed_kslack.cc.o.d"
  "/root/repo/src/disorder/handler_factory.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/handler_factory.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/handler_factory.cc.o.d"
  "/root/repo/src/disorder/keyed_handler.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/keyed_handler.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/keyed_handler.cc.o.d"
  "/root/repo/src/disorder/lb_kslack.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/lb_kslack.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/lb_kslack.cc.o.d"
  "/root/repo/src/disorder/mp_kslack.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/mp_kslack.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/mp_kslack.cc.o.d"
  "/root/repo/src/disorder/pass_through.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/pass_through.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/pass_through.cc.o.d"
  "/root/repo/src/disorder/quality_model.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/quality_model.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/quality_model.cc.o.d"
  "/root/repo/src/disorder/reorder_buffer.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/reorder_buffer.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/reorder_buffer.cc.o.d"
  "/root/repo/src/disorder/watermark_reorderer.cc" "src/disorder/CMakeFiles/streamq_disorder.dir/watermark_reorderer.cc.o" "gcc" "src/disorder/CMakeFiles/streamq_disorder.dir/watermark_reorderer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/streamq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/streamq_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
