# Empty compiler generated dependencies file for streamq_stream.
# This may be replaced when dependencies are built.
