file(REMOVE_RECURSE
  "CMakeFiles/streamq_stream.dir/disorder_metrics.cc.o"
  "CMakeFiles/streamq_stream.dir/disorder_metrics.cc.o.d"
  "CMakeFiles/streamq_stream.dir/event.cc.o"
  "CMakeFiles/streamq_stream.dir/event.cc.o.d"
  "CMakeFiles/streamq_stream.dir/generator.cc.o"
  "CMakeFiles/streamq_stream.dir/generator.cc.o.d"
  "CMakeFiles/streamq_stream.dir/source.cc.o"
  "CMakeFiles/streamq_stream.dir/source.cc.o.d"
  "CMakeFiles/streamq_stream.dir/trace_io.cc.o"
  "CMakeFiles/streamq_stream.dir/trace_io.cc.o.d"
  "libstreamq_stream.a"
  "libstreamq_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
