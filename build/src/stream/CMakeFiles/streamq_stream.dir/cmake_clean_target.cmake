file(REMOVE_RECURSE
  "libstreamq_stream.a"
)
