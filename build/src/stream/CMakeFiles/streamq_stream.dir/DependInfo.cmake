
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/disorder_metrics.cc" "src/stream/CMakeFiles/streamq_stream.dir/disorder_metrics.cc.o" "gcc" "src/stream/CMakeFiles/streamq_stream.dir/disorder_metrics.cc.o.d"
  "/root/repo/src/stream/event.cc" "src/stream/CMakeFiles/streamq_stream.dir/event.cc.o" "gcc" "src/stream/CMakeFiles/streamq_stream.dir/event.cc.o.d"
  "/root/repo/src/stream/generator.cc" "src/stream/CMakeFiles/streamq_stream.dir/generator.cc.o" "gcc" "src/stream/CMakeFiles/streamq_stream.dir/generator.cc.o.d"
  "/root/repo/src/stream/source.cc" "src/stream/CMakeFiles/streamq_stream.dir/source.cc.o" "gcc" "src/stream/CMakeFiles/streamq_stream.dir/source.cc.o.d"
  "/root/repo/src/stream/trace_io.cc" "src/stream/CMakeFiles/streamq_stream.dir/trace_io.cc.o" "gcc" "src/stream/CMakeFiles/streamq_stream.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
