# Empty dependencies file for streamq_core.
# This may be replaced when dependencies are built.
