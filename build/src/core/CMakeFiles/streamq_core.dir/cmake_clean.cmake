file(REMOVE_RECURSE
  "CMakeFiles/streamq_core.dir/continuous_query.cc.o"
  "CMakeFiles/streamq_core.dir/continuous_query.cc.o.d"
  "CMakeFiles/streamq_core.dir/executor.cc.o"
  "CMakeFiles/streamq_core.dir/executor.cc.o.d"
  "CMakeFiles/streamq_core.dir/multi_query.cc.o"
  "CMakeFiles/streamq_core.dir/multi_query.cc.o.d"
  "CMakeFiles/streamq_core.dir/stream_join.cc.o"
  "CMakeFiles/streamq_core.dir/stream_join.cc.o.d"
  "libstreamq_core.a"
  "libstreamq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
