file(REMOVE_RECURSE
  "libstreamq_core.a"
)
