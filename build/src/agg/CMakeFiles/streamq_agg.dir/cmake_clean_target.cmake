file(REMOVE_RECURSE
  "libstreamq_agg.a"
)
