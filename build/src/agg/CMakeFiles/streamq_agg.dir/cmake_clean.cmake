file(REMOVE_RECURSE
  "CMakeFiles/streamq_agg.dir/aggregate.cc.o"
  "CMakeFiles/streamq_agg.dir/aggregate.cc.o.d"
  "libstreamq_agg.a"
  "libstreamq_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
