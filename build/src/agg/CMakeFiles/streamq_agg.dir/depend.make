# Empty dependencies file for streamq_agg.
# This may be replaced when dependencies are built.
