file(REMOVE_RECURSE
  "CMakeFiles/streamq_control.dir/pi_controller.cc.o"
  "CMakeFiles/streamq_control.dir/pi_controller.cc.o.d"
  "libstreamq_control.a"
  "libstreamq_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
