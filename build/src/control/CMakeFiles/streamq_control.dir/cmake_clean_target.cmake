file(REMOVE_RECURSE
  "libstreamq_control.a"
)
