# Empty compiler generated dependencies file for streamq_control.
# This may be replaced when dependencies are built.
