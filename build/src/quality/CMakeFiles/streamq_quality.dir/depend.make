# Empty dependencies file for streamq_quality.
# This may be replaced when dependencies are built.
