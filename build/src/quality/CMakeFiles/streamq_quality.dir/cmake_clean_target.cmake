file(REMOVE_RECURSE
  "libstreamq_quality.a"
)
