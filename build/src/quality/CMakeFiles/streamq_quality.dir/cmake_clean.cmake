file(REMOVE_RECURSE
  "CMakeFiles/streamq_quality.dir/oracle.cc.o"
  "CMakeFiles/streamq_quality.dir/oracle.cc.o.d"
  "CMakeFiles/streamq_quality.dir/quality_metrics.cc.o"
  "CMakeFiles/streamq_quality.dir/quality_metrics.cc.o.d"
  "CMakeFiles/streamq_quality.dir/value_error_model.cc.o"
  "CMakeFiles/streamq_quality.dir/value_error_model.cc.o.d"
  "libstreamq_quality.a"
  "libstreamq_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
