# Empty compiler generated dependencies file for streamq_common.
# This may be replaced when dependencies are built.
