file(REMOVE_RECURSE
  "libstreamq_common.a"
)
