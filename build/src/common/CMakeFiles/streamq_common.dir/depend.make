# Empty dependencies file for streamq_common.
# This may be replaced when dependencies are built.
