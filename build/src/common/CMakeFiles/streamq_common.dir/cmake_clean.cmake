file(REMOVE_RECURSE
  "CMakeFiles/streamq_common.dir/csv.cc.o"
  "CMakeFiles/streamq_common.dir/csv.cc.o.d"
  "CMakeFiles/streamq_common.dir/logging.cc.o"
  "CMakeFiles/streamq_common.dir/logging.cc.o.d"
  "CMakeFiles/streamq_common.dir/metrics.cc.o"
  "CMakeFiles/streamq_common.dir/metrics.cc.o.d"
  "CMakeFiles/streamq_common.dir/rng.cc.o"
  "CMakeFiles/streamq_common.dir/rng.cc.o.d"
  "CMakeFiles/streamq_common.dir/stats.cc.o"
  "CMakeFiles/streamq_common.dir/stats.cc.o.d"
  "CMakeFiles/streamq_common.dir/status.cc.o"
  "CMakeFiles/streamq_common.dir/status.cc.o.d"
  "CMakeFiles/streamq_common.dir/table_writer.cc.o"
  "CMakeFiles/streamq_common.dir/table_writer.cc.o.d"
  "CMakeFiles/streamq_common.dir/time.cc.o"
  "CMakeFiles/streamq_common.dir/time.cc.o.d"
  "libstreamq_common.a"
  "libstreamq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
