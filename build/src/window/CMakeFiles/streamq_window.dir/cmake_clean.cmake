file(REMOVE_RECURSE
  "CMakeFiles/streamq_window.dir/paned_window_operator.cc.o"
  "CMakeFiles/streamq_window.dir/paned_window_operator.cc.o.d"
  "CMakeFiles/streamq_window.dir/session_window_operator.cc.o"
  "CMakeFiles/streamq_window.dir/session_window_operator.cc.o.d"
  "CMakeFiles/streamq_window.dir/window.cc.o"
  "CMakeFiles/streamq_window.dir/window.cc.o.d"
  "CMakeFiles/streamq_window.dir/window_operator.cc.o"
  "CMakeFiles/streamq_window.dir/window_operator.cc.o.d"
  "libstreamq_window.a"
  "libstreamq_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamq_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
