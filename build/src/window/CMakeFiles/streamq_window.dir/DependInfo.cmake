
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/window/paned_window_operator.cc" "src/window/CMakeFiles/streamq_window.dir/paned_window_operator.cc.o" "gcc" "src/window/CMakeFiles/streamq_window.dir/paned_window_operator.cc.o.d"
  "/root/repo/src/window/session_window_operator.cc" "src/window/CMakeFiles/streamq_window.dir/session_window_operator.cc.o" "gcc" "src/window/CMakeFiles/streamq_window.dir/session_window_operator.cc.o.d"
  "/root/repo/src/window/window.cc" "src/window/CMakeFiles/streamq_window.dir/window.cc.o" "gcc" "src/window/CMakeFiles/streamq_window.dir/window.cc.o.d"
  "/root/repo/src/window/window_operator.cc" "src/window/CMakeFiles/streamq_window.dir/window_operator.cc.o" "gcc" "src/window/CMakeFiles/streamq_window.dir/window_operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agg/CMakeFiles/streamq_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/disorder/CMakeFiles/streamq_disorder.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/streamq_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/streamq_control.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
