# Empty compiler generated dependencies file for streamq_window.
# This may be replaced when dependencies are built.
