file(REMOVE_RECURSE
  "libstreamq_window.a"
)
