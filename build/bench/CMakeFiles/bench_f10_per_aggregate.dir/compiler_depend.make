# Empty compiler generated dependencies file for bench_f10_per_aggregate.
# This may be replaced when dependencies are built.
