file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_per_aggregate.dir/bench_f10_per_aggregate.cc.o"
  "CMakeFiles/bench_f10_per_aggregate.dir/bench_f10_per_aggregate.cc.o.d"
  "bench_f10_per_aggregate"
  "bench_f10_per_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_per_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
