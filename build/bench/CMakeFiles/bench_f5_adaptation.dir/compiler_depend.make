# Empty compiler generated dependencies file for bench_f5_adaptation.
# This may be replaced when dependencies are built.
