file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_adaptation.dir/bench_f5_adaptation.cc.o"
  "CMakeFiles/bench_f5_adaptation.dir/bench_f5_adaptation.cc.o.d"
  "bench_f5_adaptation"
  "bench_f5_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
