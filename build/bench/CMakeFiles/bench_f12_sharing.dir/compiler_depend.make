# Empty compiler generated dependencies file for bench_f12_sharing.
# This may be replaced when dependencies are built.
