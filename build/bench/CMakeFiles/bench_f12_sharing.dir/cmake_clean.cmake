file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_sharing.dir/bench_f12_sharing.cc.o"
  "CMakeFiles/bench_f12_sharing.dir/bench_f12_sharing.cc.o.d"
  "bench_f12_sharing"
  "bench_f12_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
