# Empty dependencies file for bench_f8_sensitivity.
# This may be replaced when dependencies are built.
