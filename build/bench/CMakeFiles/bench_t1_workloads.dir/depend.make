# Empty dependencies file for bench_t1_workloads.
# This may be replaced when dependencies are built.
