file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_quality_tracking.dir/bench_f6_quality_tracking.cc.o"
  "CMakeFiles/bench_f6_quality_tracking.dir/bench_f6_quality_tracking.cc.o.d"
  "bench_f6_quality_tracking"
  "bench_f6_quality_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_quality_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
