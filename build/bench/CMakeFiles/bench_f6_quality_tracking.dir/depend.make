# Empty dependencies file for bench_f6_quality_tracking.
# This may be replaced when dependencies are built.
