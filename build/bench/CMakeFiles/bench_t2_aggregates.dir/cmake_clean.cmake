file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_aggregates.dir/bench_t2_aggregates.cc.o"
  "CMakeFiles/bench_t2_aggregates.dir/bench_t2_aggregates.cc.o.d"
  "bench_t2_aggregates"
  "bench_t2_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
