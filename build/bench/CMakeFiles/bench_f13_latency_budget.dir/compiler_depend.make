# Empty compiler generated dependencies file for bench_f13_latency_budget.
# This may be replaced when dependencies are built.
