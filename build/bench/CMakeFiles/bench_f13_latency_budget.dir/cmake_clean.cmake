file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_latency_budget.dir/bench_f13_latency_budget.cc.o"
  "CMakeFiles/bench_f13_latency_budget.dir/bench_f13_latency_budget.cc.o.d"
  "bench_f13_latency_budget"
  "bench_f13_latency_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_latency_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
