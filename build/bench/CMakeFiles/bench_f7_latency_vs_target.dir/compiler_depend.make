# Empty compiler generated dependencies file for bench_f7_latency_vs_target.
# This may be replaced when dependencies are built.
