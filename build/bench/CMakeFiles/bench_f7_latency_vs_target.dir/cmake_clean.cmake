file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_latency_vs_target.dir/bench_f7_latency_vs_target.cc.o"
  "CMakeFiles/bench_f7_latency_vs_target.dir/bench_f7_latency_vs_target.cc.o.d"
  "bench_f7_latency_vs_target"
  "bench_f7_latency_vs_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_latency_vs_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
