file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_join.dir/bench_f11_join.cc.o"
  "CMakeFiles/bench_f11_join.dir/bench_f11_join.cc.o.d"
  "bench_f11_join"
  "bench_f11_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
