# Empty dependencies file for bench_f11_join.
# This may be replaced when dependencies are built.
