
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_t3_summary.cc" "bench/CMakeFiles/bench_t3_summary.dir/bench_t3_summary.cc.o" "gcc" "bench/CMakeFiles/bench_t3_summary.dir/bench_t3_summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/streamq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/streamq_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/streamq_window.dir/DependInfo.cmake"
  "/root/repo/build/src/disorder/CMakeFiles/streamq_disorder.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/streamq_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/streamq_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/streamq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
