file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_summary.dir/bench_t3_summary.cc.o"
  "CMakeFiles/bench_t3_summary.dir/bench_t3_summary.cc.o.d"
  "bench_t3_summary"
  "bench_t3_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
