file(REMOVE_RECURSE
  "CMakeFiles/bench_f15_keyed.dir/bench_f15_keyed.cc.o"
  "CMakeFiles/bench_f15_keyed.dir/bench_f15_keyed.cc.o.d"
  "bench_f15_keyed"
  "bench_f15_keyed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f15_keyed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
