# Empty dependencies file for bench_f15_keyed.
# This may be replaced when dependencies are built.
