/// Quickstart: run a quality-driven continuous query over an out-of-order
/// stream in ~30 lines of user code.
///
///   1. Describe a workload (or load a trace).
///   2. Build a query: window + aggregate + quality target.
///   3. Run it and look at results and the achieved quality/latency.

#include <cstdio>

#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/generator.h"

using namespace streamq;  // Example code only; library code never does this.

int main() {
  // 1. A 100k-tuple stream at 10k events/s whose tuples arrive with
  //    exponential 20ms delays — heavily out of order.
  WorkloadConfig workload;
  workload.num_events = 100000;
  workload.events_per_second = 10000.0;
  workload.delay.model = DelayModel::kExponential;
  workload.delay.a = 20000.0;  // 20ms mean.
  const GeneratedWorkload stream = GenerateWorkload(workload);

  // 2. "Give me per-50ms sums that are at least 95% accurate, as fast as
  //    possible." No buffer sizes anywhere — that is the paper's point.
  const ContinuousQuery query = QueryBuilder("quickstart")
                                    .Tumbling(Millis(50))
                                    .Aggregate("sum")
                                    .QualityTarget(0.95)
                                    .Build();
  std::printf("query: %s\n", query.Describe().c_str());

  // 3. Execute.
  QueryExecutor executor(query);
  VectorSource source(stream.arrival_order);
  const RunReport report = executor.Run(&source);
  std::printf("%s\n", report.ToString().c_str());

  // First few results.
  for (size_t i = 0; i < 5 && i < report.results.size(); ++i) {
    std::printf("  %s\n", report.results[i].ToString().c_str());
  }

  // 4. Audit against the exact answer (only possible offline, which is why
  //    the operator estimates quality online instead).
  const OracleEvaluator oracle(stream.arrival_order, query.window.window,
                               query.window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  std::printf("achieved quality: %.4f (target 0.95)\n",
              quality.MeanQualityIncludingMissed());
  std::printf("mean buffering latency: %s\n",
              FormatDuration(static_cast<DurationUs>(
                                 report.handler_stats.buffering_latency_us.mean()))
                  .c_str());
  return 0;
}
