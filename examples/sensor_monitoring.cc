/// Scenario: data-center temperature monitoring.
///
/// 64 sensors report readings over a congested network: delays are
/// log-normal and spike x6 whenever a backup job runs. The operator wants a
/// per-sensor 10s/1s sliding mean that is >= 90% accurate, and cares about
/// freshness — a reading pipeline that buffers for the worst-case straggler
/// is useless for alerting.
///
/// This example runs the same query under three disorder-handling policies
/// and prints the freshness/accuracy table an operator would use to choose.

#include <cstdio>
#include <iostream>

#include "core/executor.h"
#include "common/table_writer.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/generator.h"

using namespace streamq;  // Example code only.

int main() {
  WorkloadConfig workload;
  workload.num_events = 200000;
  workload.events_per_second = 20000.0;  // ~300 readings/s per sensor.
  workload.num_keys = 64;
  workload.value.model = ValueModel::kSine;  // Daily-cycle-ish temperatures.
  workload.value.a = 8.0;
  workload.value.b = static_cast<double>(Seconds(6));
  workload.value.c = 0.5;
  workload.delay.model = DelayModel::kLogNormal;
  workload.delay.a = 9.0;  // Median ~8ms.
  workload.delay.b = 0.8;
  workload.dynamics.kind = DynamicsKind::kBurst;  // Backup job every 3s.
  workload.dynamics.factor = 6.0;
  workload.dynamics.t0 = Seconds(2);
  workload.dynamics.period = Seconds(3);
  workload.dynamics.duration = Millis(700);
  workload.seed = 7;

  const GeneratedWorkload stream = GenerateWorkload(workload);
  std::printf("stream: %s\n",
              ComputeDisorderStats(stream.arrival_order).ToString().c_str());

  auto base_query = [](const char* name) {
    return QueryBuilder(name)
        .Sliding(Seconds(10), Seconds(1))
        .Aggregate("mean");
  };

  const ContinuousQuery queries[] = {
      base_query("quality-driven").QualityTarget(0.90).Build(),
      base_query("worst-case-buffering").AdaptiveMaxSlack().Build(),
      base_query("fixed-50ms").FixedSlack(Millis(50)).Build(),
  };

  const OracleEvaluator oracle(stream.arrival_order,
                               queries[0].window.window,
                               queries[0].window.aggregate);

  TableWriter table("per-sensor 10s sliding mean under three policies",
                    {"policy", "accuracy", "windows>=90%",
                     "result_staleness_p95", "buffer_tuples_peak"});
  for (const ContinuousQuery& query : queries) {
    QueryExecutor executor(query);
    VectorSource source(stream.arrival_order);
    const RunReport report = executor.Run(&source);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    table.BeginRow();
    table.Cell(query.name);
    table.Cell(quality.MeanQualityIncludingMissed(), 4);
    table.Cell(quality.FractionMeeting(0.90), 4);
    table.Cell(FormatDuration(
        static_cast<DurationUs>(quality.response_latency_us.p95)));
    table.Cell(report.handler_stats.max_buffer_size);
  }
  table.Print(std::cout);
  return 0;
}
