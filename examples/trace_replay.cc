/// Scenario: replaying a recorded trace through the engine.
///
/// Any real out-of-order feed converted to the CSV trace format
/// (id,key,event_time,arrival_time,value) replays through the engine
/// bit-for-bit reproducibly. This example records a synthetic trace, then
/// replays it with a quality-driven query — exactly the workflow for
/// evaluating the operator on production data.
///
/// Usage: trace_replay [existing_trace.csv]
///   With no argument, a demo trace is generated and written first.

#include <cstdio>
#include <string>

#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/generator.h"
#include "stream/trace_io.h"

using namespace streamq;  // Example code only.

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "demo_trace.csv";
    WorkloadConfig workload;
    workload.num_events = 50000;
    workload.delay.model = DelayModel::kLogNormal;
    workload.delay.a = 9.5;
    workload.delay.b = 1.0;
    workload.seed = 1;
    const GeneratedWorkload stream = GenerateWorkload(workload);
    const Status saved = SaveTrace(path, stream.arrival_order);
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to write demo trace: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo trace to %s\n", path.c_str());
  }

  auto loaded = LoadTrace(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const std::vector<Event>& events = loaded.value();
  std::printf("loaded %zu events: %s\n", events.size(),
              ComputeDisorderStats(events).ToString().c_str());

  const ContinuousQuery query = QueryBuilder("trace-replay")
                                    .Sliding(Seconds(5), Seconds(1))
                                    .Aggregate("mean")
                                    .QualityTarget(0.95)
                                    .Build();
  QueryExecutor executor(query);
  VectorSource source(events);
  const RunReport report = executor.Run(&source);
  std::printf("%s\n", report.ToString().c_str());

  const OracleEvaluator oracle(events, query.window.window,
                               query.window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  std::printf("quality report: %s\n", quality.ToString().c_str());
  return 0;
}
