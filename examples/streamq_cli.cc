/// streamq_cli — run a continuous query over a trace file from the command
/// line; the operational front door for evaluating the engine on recorded
/// feeds.
///
/// Usage:
///   streamq_cli --trace=feed.csv [options]
///   streamq_cli --demo            (generate a demo workload instead)
///
/// Options:
///   --window=<ms>          window size, default 50
///   --slide=<ms>           slide, default = window (tumbling)
///   --agg=<name>           count|sum|mean|min|max|var|stddev|median|
///                          quantile:<q>|distinct, default sum
///   --strategy=<s>         aq (default) | lb | fixed | mp | watermark | none
///   --quality=<q>          AQ target, default 0.95
///   --latency-budget=<ms>  LB budget, default 10
///   --k=<ms>               fixed K, default 30
///   --per-key              per-key disorder handling
///   --lateness=<ms>        allowed lateness (revisions), default 0
///   --audit                score results against the exact oracle
///   --results=<n>          print the first n results, default 0
///   --metrics-out=<path>   export pipeline metrics after the run ("-" for
///                          stdout); also enables a periodic progress line
///                          on stderr while the stream is running
///   --metrics-format=<f>   prom (default) | json
///
/// Parallel runtime (all require --threads, which requires --per-key):
///   --threads=<n>          run on the sharded keyed runner with n worker
///                          threads (default 0 = sequential executor)
///   --vshards=<v>          virtual shards multiplexed over the workers
///                          (0 = one per worker); must be >= threads
///   --rebalance            migrate hot shards between workers at safe
///                          points (single-source runs only)
///   --mpsc=<p>             feed through p producer threads over lock-free
///                          MPSC queues; the trace is partitioned into p
///                          key-disjoint sub-streams (p >= 2)
///   --pin-cores            pin worker/producer threads to cores
///                          (best-effort)
///   --arena=<on|off>       slab-arena batch memory (default on)
///
/// Robustness / degradation:
///   --buffer-cap=<n>       hard cap on buffered tuples (0 = unbounded)
///   --shed=<policy>        emit-early (default) | drop-newest | drop-oldest
///   --max-slack=<ms>       clamp on adaptive K (0 = unbounded)
///   --validate=<mode>      off (default) | drop | strict ingest validation
///
/// Fault injection (all probabilities per tuple, default 0 = off):
///   --fault-seed=<n>       fault RNG seed, default 42
///   --fault-drop=<p>       drop the tuple
///   --fault-dup=<p>        duplicate the tuple
///   --fault-ts=<p>         corrupt timestamps (negative/overflow/clock
///                          regression)
///   --fault-value=<p>      corrupt the value (NaN/Inf)
///   --fault-stall=<p>      wall-clock stall before delivery
///   --fault-stall-us=<us>  stall length, default 1000
///   --fault-burst=<p>      start a disorder burst
///   --fault-burst-len=<n>  tuples per burst, default 32
///   --fault-burst-spread=<ms>  event-time spread of a burst, default 100

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/metrics_observer.h"
#include "core/parallel_runner.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/fault_injector.h"
#include "stream/generator.h"
#include "stream/trace_io.h"

using namespace streamq;  // Example/tool code only.

namespace {

struct Flags {
  std::string trace;
  bool demo = false;
  int64_t window_ms = 50;
  int64_t slide_ms = -1;
  std::string agg = "sum";
  std::string strategy = "aq";
  double quality = 0.95;
  int64_t latency_budget_ms = 10;
  int64_t k_ms = 30;
  bool per_key = false;
  int64_t lateness_ms = 0;
  bool audit = false;
  int64_t print_results = 0;
  std::string metrics_out;
  std::string metrics_format = "prom";
  int64_t threads = 0;
  int64_t vshards = 0;
  bool rebalance = false;
  bool pin_cores = false;
  int64_t mpsc = 0;
  std::string arena = "on";
  int64_t buffer_cap = 0;
  std::string shed = "emit-early";
  int64_t max_slack_ms = 0;
  std::string validate = "off";
  FaultSpec fault;
};

/// True if any fault class is enabled (the injector is only interposed
/// then, so the default path stays byte-identical to before).
bool FaultsEnabled(const FaultSpec& f) {
  return f.drop_prob > 0.0 || f.duplicate_prob > 0.0 ||
         f.timestamp_corrupt_prob > 0.0 || f.value_corrupt_prob > 0.0 ||
         f.stall_prob > 0.0 || f.burst_prob > 0.0;
}

/// The CLI's observer: full metrics collection plus a ~2 Hz progress line on
/// stderr so long trace replays are visibly alive.
class CliObserver : public MetricsObserver {
 public:
  void OnSourceBatch(int64_t events) override {
    MetricsObserver::OnSourceBatch(events);
    events_seen_ += events;
    const TimestampUs now = WallClockMicros();
    if (start_ == 0) start_ = now;
    if (now - last_print_ < Millis(500)) return;
    last_print_ = now;
    const double elapsed = ToSeconds(now - start_);
    std::fprintf(stderr, "[streamq] %lld events in %.1fs (%.0f kev/s)\n",
                 static_cast<long long>(events_seen_), elapsed,
                 elapsed > 0.0 ? static_cast<double>(events_seen_) /
                                     elapsed / 1000.0
                               : 0.0);
  }

 private:
  int64_t events_seen_ = 0;
  TimestampUs start_ = 0;
  TimestampUs last_print_ = 0;
};

/// Writes the snapshot in the requested format to `path` ("-" = stdout).
bool WriteMetrics(const MetricsSnapshot& snapshot, const std::string& path,
                  const std::string& format) {
  const std::string text =
      format == "json" ? snapshot.ToJson() : snapshot.ToPrometheusText();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("metrics written to %s (%s)\n", path.c_str(), format.c_str());
  return true;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (std::strcmp(arg, "--demo") == 0) {
      flags->demo = true;
    } else if (std::strcmp(arg, "--per-key") == 0) {
      flags->per_key = true;
    } else if (std::strcmp(arg, "--audit") == 0) {
      flags->audit = true;
    } else if (ParseFlag(arg, "--trace", &value)) {
      flags->trace = value;
    } else if (ParseFlag(arg, "--window", &value)) {
      flags->window_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--slide", &value)) {
      flags->slide_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--agg", &value)) {
      flags->agg = value;
    } else if (ParseFlag(arg, "--strategy", &value)) {
      flags->strategy = value;
    } else if (ParseFlag(arg, "--quality", &value)) {
      flags->quality = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--latency-budget", &value)) {
      flags->latency_budget_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--k", &value)) {
      flags->k_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--lateness", &value)) {
      flags->lateness_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--results", &value)) {
      flags->print_results = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--metrics-out", &value)) {
      flags->metrics_out = value;
    } else if (ParseFlag(arg, "--metrics-format", &value)) {
      flags->metrics_format = value;
    } else if (std::strcmp(arg, "--rebalance") == 0) {
      flags->rebalance = true;
    } else if (std::strcmp(arg, "--pin-cores") == 0) {
      flags->pin_cores = true;
    } else if (ParseFlag(arg, "--threads", &value)) {
      flags->threads = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--vshards", &value)) {
      flags->vshards = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--mpsc", &value)) {
      flags->mpsc = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--arena", &value)) {
      flags->arena = value;
    } else if (ParseFlag(arg, "--buffer-cap", &value)) {
      flags->buffer_cap = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--shed", &value)) {
      flags->shed = value;
    } else if (ParseFlag(arg, "--max-slack", &value)) {
      flags->max_slack_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--validate", &value)) {
      flags->validate = value;
    } else if (ParseFlag(arg, "--fault-seed", &value)) {
      flags->fault.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--fault-drop", &value)) {
      flags->fault.drop_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-dup", &value)) {
      flags->fault.duplicate_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-ts", &value)) {
      flags->fault.timestamp_corrupt_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-value", &value)) {
      flags->fault.value_corrupt_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-stall", &value)) {
      flags->fault.stall_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-stall-us", &value)) {
      flags->fault.stall_us = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--fault-burst", &value)) {
      flags->fault.burst_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-burst-len", &value)) {
      flags->fault.burst_len = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--fault-burst-spread", &value)) {
      flags->fault.burst_spread_us = Millis(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return false;
    }
  }
  if (flags->trace.empty() && !flags->demo) {
    std::fprintf(stderr,
                 "usage: streamq_cli --trace=feed.csv | --demo [options]\n"
                 "(see the header of examples/streamq_cli.cc)\n");
    return false;
  }
  if (flags->metrics_format != "prom" && flags->metrics_format != "json") {
    std::fprintf(stderr, "bad --metrics-format: %s (want prom or json)\n",
                 flags->metrics_format.c_str());
    return false;
  }
  const Status fault_ok = flags->fault.Validate();
  if (!fault_ok.ok()) {
    std::fprintf(stderr, "bad fault flags: %s\n",
                 fault_ok.ToString().c_str());
    return false;
  }
  if (flags->threads < 0) {
    std::fprintf(stderr, "bad --threads: %lld (want >= 0)\n",
                 static_cast<long long>(flags->threads));
    return false;
  }
  if (flags->arena != "on" && flags->arena != "off") {
    std::fprintf(stderr, "bad --arena: %s (want on or off)\n",
                 flags->arena.c_str());
    return false;
  }
  if (flags->threads == 0) {
    if (flags->vshards != 0 || flags->rebalance || flags->pin_cores ||
        flags->mpsc != 0) {
      std::fprintf(stderr,
                   "--vshards/--rebalance/--pin-cores/--mpsc require "
                   "--threads=<n>\n");
      return false;
    }
    return true;
  }
  if (!flags->per_key) {
    std::fprintf(stderr,
                 "--threads shards the key space, so it requires --per-key\n");
    return false;
  }
  if (flags->vshards != 0 && flags->vshards < flags->threads) {
    std::fprintf(stderr, "bad --vshards: %lld (want 0 or >= --threads)\n",
                 static_cast<long long>(flags->vshards));
    return false;
  }
  if (flags->mpsc != 0) {
    if (flags->mpsc < 2) {
      std::fprintf(stderr, "bad --mpsc: %lld (want >= 2 producers)\n",
                   static_cast<long long>(flags->mpsc));
      return false;
    }
    if (flags->rebalance) {
      std::fprintf(stderr, "--rebalance requires a single-source run; "
                           "drop --mpsc\n");
      return false;
    }
    if (FaultsEnabled(flags->fault)) {
      std::fprintf(stderr,
                   "fault injection wraps a single source; drop --mpsc\n");
      return false;
    }
  }
  return true;
}

bool ParseShedPolicy(const std::string& name, ShedPolicy* out) {
  if (name == "emit-early") {
    *out = ShedPolicy::kEmitEarly;
  } else if (name == "drop-newest") {
    *out = ShedPolicy::kDropNewest;
  } else if (name == "drop-oldest") {
    *out = ShedPolicy::kDropOldest;
  } else {
    return false;
  }
  return true;
}

bool ParseValidation(const std::string& name, IngestValidation* out) {
  if (name == "off") {
    *out = IngestValidation::kOff;
  } else if (name == "drop") {
    *out = IngestValidation::kDrop;
  } else if (name == "strict") {
    *out = IngestValidation::kStrict;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  // --- Load or generate the stream.
  std::vector<Event> events;
  if (flags.demo) {
    WorkloadConfig cfg;
    cfg.num_events = 100000;
    cfg.num_keys = 4;
    cfg.delay.model = DelayModel::kLogNormal;
    cfg.delay.a = 9.5;
    cfg.delay.b = 1.0;
    events = GenerateWorkload(cfg).arrival_order;
    std::printf("generated demo workload: 100000 events\n");
  } else {
    auto loaded = LoadTrace(flags.trace);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", flags.trace.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    events = std::move(loaded).value();
  }
  std::printf("stream: %s\n", ComputeDisorderStats(events).ToString().c_str());

  // --- Build the query.
  const DurationUs window = Millis(flags.window_ms);
  const DurationUs slide =
      flags.slide_ms > 0 ? Millis(flags.slide_ms) : window;
  QueryBuilder builder("cli");
  builder.Sliding(window, slide);
  auto agg = ParseAggregateSpec(flags.agg);
  if (!agg.ok()) {
    std::fprintf(stderr, "bad --agg: %s\n", agg.status().ToString().c_str());
    return 2;
  }
  builder.Aggregate(agg.value());
  builder.AllowedLateness(Millis(flags.lateness_ms));

  if (flags.strategy == "aq") {
    builder.QualityTarget(flags.quality);
  } else if (flags.strategy == "lb") {
    builder.LatencyBudget(Millis(flags.latency_budget_ms));
  } else if (flags.strategy == "fixed") {
    builder.FixedSlack(Millis(flags.k_ms));
  } else if (flags.strategy == "mp") {
    builder.AdaptiveMaxSlack();
  } else if (flags.strategy == "watermark") {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(flags.k_ms);
    wm.allowed_lateness = Millis(flags.lateness_ms);
    builder.Watermark(wm);
  } else if (flags.strategy == "none") {
    builder.NoDisorderHandling();
  } else {
    std::fprintf(stderr, "unknown --strategy: %s\n", flags.strategy.c_str());
    return 2;
  }
  if (flags.per_key) builder.PerKey();

  ShedPolicy shed_policy = ShedPolicy::kEmitEarly;
  if (!ParseShedPolicy(flags.shed, &shed_policy)) {
    std::fprintf(stderr,
                 "unknown --shed: %s (want emit-early, drop-newest or "
                 "drop-oldest)\n",
                 flags.shed.c_str());
    return 2;
  }
  if (flags.buffer_cap > 0) {
    builder.BufferCap(static_cast<size_t>(flags.buffer_cap), shed_policy);
  }
  if (flags.max_slack_ms > 0) builder.MaxSlack(Millis(flags.max_slack_ms));
  IngestValidation validation = IngestValidation::kOff;
  if (!ParseValidation(flags.validate, &validation)) {
    std::fprintf(stderr, "unknown --validate: %s (want off, drop or strict)\n",
                 flags.validate.c_str());
    return 2;
  }
  builder.ValidateIngest(validation);

  ContinuousQuery query = builder.Build();
  if (flags.threads > 0 && flags.arena == "on") {
    // Arena mode also backs the reorder buffers with recycled bucket slabs.
    query.handler = query.handler.WithArena();
  }
  std::printf("query: %s\n", query.Describe().c_str());

  // --- Run.
  CliObserver observer;
  const bool want_metrics = !flags.metrics_out.empty();
  VectorSource source(std::move(events));
  RunReport report;
  if (flags.threads > 0) {
    ParallelOptions popts;
    popts.use_arena = flags.arena == "on";
    popts.pin_cores = flags.pin_cores;
    popts.virtual_shards = static_cast<size_t>(flags.vshards);
    popts.rebalance = flags.rebalance;
    ShardedKeyedRunner runner(query, static_cast<size_t>(flags.threads),
                              popts);
    if (want_metrics) runner.SetObserver(&observer);
    if (flags.mpsc > 0) {
      // Key-disjoint partitions: every key's events flow through exactly one
      // producer, which keeps per-key first emissions interleaving-invariant
      // (see ShardedKeyedRunner::RunMultiSource).
      const size_t parts = static_cast<size_t>(flags.mpsc);
      std::vector<std::vector<Event>> partitioned(parts);
      for (const Event& e : source.events()) {
        partitioned[ShardedKeyedRunner::ShardOf(e.key, parts)].push_back(e);
      }
      std::vector<VectorSource> part_sources;
      part_sources.reserve(parts);
      for (std::vector<Event>& part : partitioned) {
        part_sources.emplace_back(std::move(part));
      }
      std::vector<EventSource*> sources;
      sources.reserve(parts);
      for (VectorSource& s : part_sources) sources.push_back(&s);
      report = runner.RunMultiSource(sources);
    } else if (FaultsEnabled(flags.fault)) {
      FaultInjectingSource faulty(&source, flags.fault);
      report = runner.Run(&faulty);
      std::printf("faults: %s\n", faulty.stats().ToString().c_str());
    } else {
      report = runner.Run(&source);
    }
    if (flags.rebalance) {
      std::printf("rebalance: %lld shard migration(s)\n",
                  static_cast<long long>(runner.migrations()));
    }
  } else if (FaultsEnabled(flags.fault)) {
    QueryExecutor exec(query);
    if (want_metrics) exec.SetObserver(&observer);
    FaultInjectingSource faulty(&source, flags.fault);
    report = exec.Run(&faulty);
    std::printf("faults: %s\n", faulty.stats().ToString().c_str());
  } else {
    QueryExecutor exec(query);
    if (want_metrics) exec.SetObserver(&observer);
    report = exec.Run(&source);
  }
  std::printf("%s\n", report.ToString().c_str());
  if (!report.status.ok()) {
    std::fprintf(stderr, "run degraded: %s\n",
                 report.status.ToString().c_str());
  }

  if (want_metrics &&
      !WriteMetrics(observer.Snapshot(), flags.metrics_out,
                    flags.metrics_format)) {
    return 1;
  }

  for (int64_t i = 0;
       i < flags.print_results &&
       i < static_cast<int64_t>(report.results.size());
       ++i) {
    std::printf("  %s\n",
                report.results[static_cast<size_t>(i)].ToString().c_str());
  }

  // --- Optional oracle audit.
  if (flags.audit) {
    const OracleEvaluator oracle(source.events(), query.window.window,
                                 query.window.aggregate);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    std::printf("audit: %s\n", quality.ToString().c_str());
  }
  return 0;
}
