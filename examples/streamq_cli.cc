/// streamq_cli — run a continuous query over a trace file from the command
/// line; the operational front door for evaluating the engine on recorded
/// feeds.
///
/// Usage:
///   streamq_cli --trace=feed.csv [options]
///   streamq_cli --demo            (generate a demo workload instead)
///
/// Options:
///   --window=<ms>          window size, default 50
///   --slide=<ms>           slide, default = window (tumbling)
///   --agg=<name>           count|sum|mean|min|max|var|stddev|median|
///                          quantile:<q>|distinct, default sum
///   --strategy=<s>         aq (default) | lb | fixed | mp | watermark | none
///   --quality=<q>          AQ target, default 0.95
///   --latency-budget=<ms>  LB budget, default 10
///   --k=<ms>               fixed K, default 30
///   --per-key              per-key disorder handling
///   --lateness=<ms>        allowed lateness (revisions), default 0
///   --audit                score results against the exact oracle
///   --results=<n>          print the first n results, default 0

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/generator.h"
#include "stream/trace_io.h"

using namespace streamq;  // Example/tool code only.

namespace {

struct Flags {
  std::string trace;
  bool demo = false;
  int64_t window_ms = 50;
  int64_t slide_ms = -1;
  std::string agg = "sum";
  std::string strategy = "aq";
  double quality = 0.95;
  int64_t latency_budget_ms = 10;
  int64_t k_ms = 30;
  bool per_key = false;
  int64_t lateness_ms = 0;
  bool audit = false;
  int64_t print_results = 0;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (std::strcmp(arg, "--demo") == 0) {
      flags->demo = true;
    } else if (std::strcmp(arg, "--per-key") == 0) {
      flags->per_key = true;
    } else if (std::strcmp(arg, "--audit") == 0) {
      flags->audit = true;
    } else if (ParseFlag(arg, "--trace", &value)) {
      flags->trace = value;
    } else if (ParseFlag(arg, "--window", &value)) {
      flags->window_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--slide", &value)) {
      flags->slide_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--agg", &value)) {
      flags->agg = value;
    } else if (ParseFlag(arg, "--strategy", &value)) {
      flags->strategy = value;
    } else if (ParseFlag(arg, "--quality", &value)) {
      flags->quality = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--latency-budget", &value)) {
      flags->latency_budget_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--k", &value)) {
      flags->k_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--lateness", &value)) {
      flags->lateness_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--results", &value)) {
      flags->print_results = std::atoll(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return false;
    }
  }
  if (flags->trace.empty() && !flags->demo) {
    std::fprintf(stderr,
                 "usage: streamq_cli --trace=feed.csv | --demo [options]\n"
                 "(see the header of examples/streamq_cli.cc)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  // --- Load or generate the stream.
  std::vector<Event> events;
  if (flags.demo) {
    WorkloadConfig cfg;
    cfg.num_events = 100000;
    cfg.num_keys = 4;
    cfg.delay.model = DelayModel::kLogNormal;
    cfg.delay.a = 9.5;
    cfg.delay.b = 1.0;
    events = GenerateWorkload(cfg).arrival_order;
    std::printf("generated demo workload: 100000 events\n");
  } else {
    auto loaded = LoadTrace(flags.trace);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", flags.trace.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    events = std::move(loaded).value();
  }
  std::printf("stream: %s\n", ComputeDisorderStats(events).ToString().c_str());

  // --- Build the query.
  const DurationUs window = Millis(flags.window_ms);
  const DurationUs slide =
      flags.slide_ms > 0 ? Millis(flags.slide_ms) : window;
  QueryBuilder builder("cli");
  builder.Sliding(window, slide);
  auto agg = ParseAggregateSpec(flags.agg);
  if (!agg.ok()) {
    std::fprintf(stderr, "bad --agg: %s\n", agg.status().ToString().c_str());
    return 2;
  }
  builder.Aggregate(agg.value());
  builder.AllowedLateness(Millis(flags.lateness_ms));

  if (flags.strategy == "aq") {
    builder.QualityTarget(flags.quality);
  } else if (flags.strategy == "lb") {
    builder.LatencyBudget(Millis(flags.latency_budget_ms));
  } else if (flags.strategy == "fixed") {
    builder.FixedSlack(Millis(flags.k_ms));
  } else if (flags.strategy == "mp") {
    builder.AdaptiveMaxSlack();
  } else if (flags.strategy == "watermark") {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(flags.k_ms);
    wm.allowed_lateness = Millis(flags.lateness_ms);
    builder.Watermark(wm);
  } else if (flags.strategy == "none") {
    builder.NoDisorderHandling();
  } else {
    std::fprintf(stderr, "unknown --strategy: %s\n", flags.strategy.c_str());
    return 2;
  }
  if (flags.per_key) builder.PerKey();

  const ContinuousQuery query = builder.Build();
  std::printf("query: %s\n", query.Describe().c_str());

  // --- Run.
  QueryExecutor exec(query);
  VectorSource source(std::move(events));
  const RunReport report = exec.Run(&source);
  std::printf("%s\n", report.ToString().c_str());

  for (int64_t i = 0;
       i < flags.print_results &&
       i < static_cast<int64_t>(report.results.size());
       ++i) {
    std::printf("  %s\n",
                report.results[static_cast<size_t>(i)].ToString().c_str());
  }

  // --- Optional oracle audit.
  if (flags.audit) {
    const OracleEvaluator oracle(source.events(), query.window.window,
                                 query.window.aggregate);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    std::printf("audit: %s\n", quality.ToString().c_str());
  }
  return 0;
}
