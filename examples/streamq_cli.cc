/// streamq_cli — run a continuous query over a trace file from the command
/// line; the operational front door for evaluating the engine on recorded
/// feeds.
///
/// Usage:
///   streamq_cli --trace=feed.csv [options]
///   streamq_cli --demo            (generate a demo workload instead)
///
/// Session options (shared with the server's RegisterQuery frames and the
/// load generator — see core/session_options.h for the full list):
///   --window=<ms> --slide=<ms> --agg=<name> --strategy=<s> --quality=<q>
///   --latency-budget=<ms> --k=<ms> --per-key --lateness=<ms>
///   --threads=<n> --vshards=<v> --rebalance --mpsc=<p> --pin-cores
///   --steal --adaptive-batch --numa-arena
///   --arena=<on|off> --buffer-cap=<n> --shed=<policy> --max-slack=<ms>
///   --validate=<mode> --window-engine=<legacy|hot|amend> --speculative
///
/// CLI-only options:
///   --audit                score results against the exact oracle
///   --results=<n>          print the first n results, default 0
///   --metrics-out=<path>   export pipeline metrics after the run ("-" for
///                          stdout); also enables a periodic progress line
///                          on stderr while the stream is running
///   --metrics-format=<f>   prom (default) | json
///
/// Fault injection (all probabilities per tuple, default 0 = off):
///   --fault-seed=<n>       fault RNG seed, default 42
///   --fault-drop=<p>       drop the tuple
///   --fault-dup=<p>        duplicate the tuple
///   --fault-ts=<p>         corrupt timestamps (negative/overflow/clock
///                          regression)
///   --fault-value=<p>      corrupt the value (NaN/Inf)
///   --fault-stall=<p>      wall-clock stall before delivery
///   --fault-stall-us=<us>  stall length, default 1000
///   --fault-burst=<p>      start a disorder burst
///   --fault-burst-len=<n>  tuples per burst, default 32
///   --fault-burst-spread=<ms>  event-time spread of a burst, default 100
///
/// Unknown flags are rejected with a non-zero exit and a closest-match
/// hint ("unknown flag --thread (did you mean --threads?)").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/metrics_observer.h"
#include "core/session_options.h"
#include "core/stream_session.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/fault_injector.h"
#include "stream/generator.h"
#include "stream/trace_io.h"

using namespace streamq;  // Example/tool code only.

namespace {

/// Flags the CLI adds on top of the shared SessionOptions vocabulary.
struct CliFlags {
  std::string trace;
  bool demo = false;
  bool audit = false;
  int64_t print_results = 0;
  std::string metrics_out;
  std::string metrics_format = "prom";
  FaultSpec fault;
};

/// The CLI-only flag names, for the did-you-mean hint.
const std::vector<std::string>& CliOnlyFlags() {
  static const std::vector<std::string> kFlags = {
      "--trace", "--demo", "--audit", "--results", "--metrics-out",
      "--metrics-format", "--fault-seed", "--fault-drop", "--fault-dup",
      "--fault-ts", "--fault-value", "--fault-stall", "--fault-stall-us",
      "--fault-burst", "--fault-burst-len", "--fault-burst-spread"};
  return kFlags;
}

/// True if any fault class is enabled (the injector is only interposed
/// then, so the default path stays byte-identical to before).
bool FaultsEnabled(const FaultSpec& f) {
  return f.drop_prob > 0.0 || f.duplicate_prob > 0.0 ||
         f.timestamp_corrupt_prob > 0.0 || f.value_corrupt_prob > 0.0 ||
         f.stall_prob > 0.0 || f.burst_prob > 0.0;
}

/// The CLI's observer: full metrics collection plus a ~2 Hz progress line on
/// stderr so long trace replays are visibly alive.
class CliObserver : public MetricsObserver {
 public:
  void OnSourceBatch(int64_t events) override {
    MetricsObserver::OnSourceBatch(events);
    events_seen_ += events;
    const TimestampUs now = WallClockMicros();
    if (start_ == 0) start_ = now;
    if (now - last_print_ < Millis(500)) return;
    last_print_ = now;
    const double elapsed = ToSeconds(now - start_);
    std::fprintf(stderr, "[streamq] %lld events in %.1fs (%.0f kev/s)\n",
                 static_cast<long long>(events_seen_), elapsed,
                 elapsed > 0.0 ? static_cast<double>(events_seen_) /
                                     elapsed / 1000.0
                               : 0.0);
  }

 private:
  int64_t events_seen_ = 0;
  TimestampUs start_ = 0;
  TimestampUs last_print_ = 0;
};

/// Writes the snapshot in the requested format to `path` ("-" = stdout).
bool WriteMetrics(const MetricsSnapshot& snapshot, const std::string& path,
                  const std::string& format) {
  const std::string text =
      format == "json" ? snapshot.ToJson() : snapshot.ToPrometheusText();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("metrics written to %s (%s)\n", path.c_str(), format.c_str());
  return true;
}

bool TakeFlag(const std::string& arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (arg.compare(0, len, name) == 0 && arg.size() > len &&
      arg[len] == '=') {
    *out = arg.substr(len + 1);
    return true;
  }
  return false;
}

bool ParseNumeric(const std::string& arg, const char* name,
                  const std::string& value, double* out) {
  const Status parsed = ParseDoubleStrict(value, out);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad %s: %s\n", name, parsed.ToString().c_str());
    return false;
  }
  (void)arg;
  return true;
}

/// Consumes the tokens SessionOptions::ParseTokens did not recognize.
/// Anything left after the CLI's own flags is a hard error with a
/// closest-match hint.
bool ParseCliFlags(const std::vector<std::string>& tokens, CliFlags* flags) {
  for (const std::string& arg : tokens) {
    std::string value;
    double num = 0.0;
    if (arg == "--demo") {
      flags->demo = true;
    } else if (arg == "--audit") {
      flags->audit = true;
    } else if (TakeFlag(arg, "--trace", &value)) {
      flags->trace = value;
    } else if (TakeFlag(arg, "--results", &value)) {
      if (!ParseInt64Strict(value, &flags->print_results).ok()) {
        std::fprintf(stderr, "bad --results: %s\n", value.c_str());
        return false;
      }
    } else if (TakeFlag(arg, "--metrics-out", &value)) {
      flags->metrics_out = value;
    } else if (TakeFlag(arg, "--metrics-format", &value)) {
      flags->metrics_format = value;
    } else if (TakeFlag(arg, "--fault-seed", &value)) {
      int64_t seed = 0;
      if (!ParseInt64Strict(value, &seed).ok()) {
        std::fprintf(stderr, "bad --fault-seed: %s\n", value.c_str());
        return false;
      }
      flags->fault.seed = static_cast<uint64_t>(seed);
    } else if (TakeFlag(arg, "--fault-drop", &value)) {
      if (!ParseNumeric(arg, "--fault-drop", value, &num)) return false;
      flags->fault.drop_prob = num;
    } else if (TakeFlag(arg, "--fault-dup", &value)) {
      if (!ParseNumeric(arg, "--fault-dup", value, &num)) return false;
      flags->fault.duplicate_prob = num;
    } else if (TakeFlag(arg, "--fault-ts", &value)) {
      if (!ParseNumeric(arg, "--fault-ts", value, &num)) return false;
      flags->fault.timestamp_corrupt_prob = num;
    } else if (TakeFlag(arg, "--fault-value", &value)) {
      if (!ParseNumeric(arg, "--fault-value", value, &num)) return false;
      flags->fault.value_corrupt_prob = num;
    } else if (TakeFlag(arg, "--fault-stall", &value)) {
      if (!ParseNumeric(arg, "--fault-stall", value, &num)) return false;
      flags->fault.stall_prob = num;
    } else if (TakeFlag(arg, "--fault-stall-us", &value)) {
      if (!ParseInt64Strict(value, &flags->fault.stall_us).ok()) {
        std::fprintf(stderr, "bad --fault-stall-us: %s\n", value.c_str());
        return false;
      }
    } else if (TakeFlag(arg, "--fault-burst", &value)) {
      if (!ParseNumeric(arg, "--fault-burst", value, &num)) return false;
      flags->fault.burst_prob = num;
    } else if (TakeFlag(arg, "--fault-burst-len", &value)) {
      if (!ParseInt64Strict(value, &flags->fault.burst_len).ok()) {
        std::fprintf(stderr, "bad --fault-burst-len: %s\n", value.c_str());
        return false;
      }
    } else if (TakeFlag(arg, "--fault-burst-spread", &value)) {
      int64_t ms = 0;
      if (!ParseInt64Strict(value, &ms).ok()) {
        std::fprintf(stderr, "bad --fault-burst-spread: %s\n", value.c_str());
        return false;
      }
      flags->fault.burst_spread_us = Millis(ms);
    } else {
      const std::string hint = SuggestFlag(arg, CliOnlyFlags());
      if (hint.empty()) {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      } else {
        std::fprintf(stderr, "unknown flag: %s (did you mean %s?)\n",
                     arg.c_str(), hint.c_str());
      }
      return false;
    }
  }
  if (flags->trace.empty() && !flags->demo) {
    std::fprintf(stderr,
                 "usage: streamq_cli --trace=feed.csv | --demo [options]\n"
                 "(see the header of examples/streamq_cli.cc)\n");
    return false;
  }
  if (flags->metrics_format != "prom" && flags->metrics_format != "json") {
    std::fprintf(stderr, "bad --metrics-format: %s (want prom or json)\n",
                 flags->metrics_format.c_str());
    return false;
  }
  const Status fault_ok = flags->fault.Validate();
  if (!fault_ok.ok()) {
    std::fprintf(stderr, "bad fault flags: %s\n",
                 fault_ok.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Session flags go through the shared parser; whatever it does not
  // recognize comes back for the CLI-only pass.
  SessionOptions options;
  options.Name("cli");
  std::vector<std::string> leftover;
  const Status parsed = SessionOptions::ParseArgs(argc, argv, &options,
                                                  &leftover);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  CliFlags flags;
  if (!ParseCliFlags(leftover, &flags)) return 2;
  const Status valid = options.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }
  if (options.mpsc > 0 && FaultsEnabled(flags.fault)) {
    std::fprintf(stderr,
                 "fault injection wraps a single source; drop --mpsc\n");
    return 2;
  }

  // --- Load or generate the stream.
  std::vector<Event> events;
  if (flags.demo) {
    WorkloadConfig cfg;
    cfg.num_events = 100000;
    cfg.num_keys = 4;
    cfg.delay.model = DelayModel::kLogNormal;
    cfg.delay.a = 9.5;
    cfg.delay.b = 1.0;
    events = GenerateWorkload(cfg).arrival_order;
    std::printf("generated demo workload: 100000 events\n");
  } else {
    auto loaded = LoadTrace(flags.trace);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", flags.trace.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    events = std::move(loaded).value();
  }
  std::printf("stream: %s\n", ComputeDisorderStats(events).ToString().c_str());

  // --- Open the session (builds the query and the runtime in one step).
  auto session = StreamSession::Open(options);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 2;
  }
  std::printf("query: %s\n", session.value()->query().Describe().c_str());

  // --- Run.
  CliObserver observer;
  const bool want_metrics = !flags.metrics_out.empty();
  if (want_metrics) session.value()->SetObserver(&observer);
  VectorSource source(std::move(events));
  RunReport report;
  if (FaultsEnabled(flags.fault)) {
    FaultInjectingSource faulty(&source, flags.fault);
    report = session.value()->Run(&faulty);
    std::printf("faults: %s\n", faulty.stats().ToString().c_str());
  } else {
    report = session.value()->Run(&source);
  }
  if (options.rebalance) {
    std::printf("rebalance: %lld shard migration(s)\n",
                static_cast<long long>(session.value()->migrations()));
  }
  std::printf("%s\n", report.ToString().c_str());
  if (!report.status.ok()) {
    std::fprintf(stderr, "run degraded: %s\n",
                 report.status.ToString().c_str());
  }

  if (want_metrics &&
      !WriteMetrics(observer.Snapshot(), flags.metrics_out,
                    flags.metrics_format)) {
    return 1;
  }

  for (int64_t i = 0;
       i < flags.print_results &&
       i < static_cast<int64_t>(report.results.size());
       ++i) {
    std::printf("  %s\n",
                report.results[static_cast<size_t>(i)].ToString().c_str());
  }

  // --- Optional oracle audit.
  if (flags.audit) {
    const ContinuousQuery& query = session.value()->query();
    const OracleEvaluator oracle(source.events(), query.window.window,
                                 query.window.aggregate);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    std::printf("audit: %s\n", quality.ToString().c_str());
  }
  return 0;
}
