/// Scenario: clickstream sessionization.
///
/// Click events from web/mobile clients arrive out of order (mobile
/// batches, proxy retries). A session ends after 500ms of inactivity; the
/// analytics team wants, per user, each session's click count as soon as
/// the session closes.
///
/// Session windows are where upstream reordering earns its keep: fed
/// in-order, an event can only extend the newest session — fed out of
/// order, sessions fragment. The example shows the same stream
/// sessionized behind (a) a quality-driven reorderer and (b) no reordering,
/// and compares session counts against the in-order truth.

#include <cstdio>

#include "disorder/handler_factory.h"
#include "stream/disorder_metrics.h"
#include "stream/generator.h"
#include "window/session_window_operator.h"

using namespace streamq;  // Example code only.

namespace {

SessionWindowedAggregation::Stats Sessionize(
    const std::vector<Event>& arrivals, const DisorderHandlerSpec& spec,
    std::vector<WindowResult>* out) {
  CollectingResultSink results;
  SessionWindowedAggregation::Options options;
  options.gap = Micros(500);
  options.aggregate.kind = AggKind::kCount;
  SessionWindowedAggregation op(options, &results);
  auto handler = MakeDisorderHandlerOrDie(spec);
  for (const Event& e : arrivals) handler->OnEvent(e, &op);
  handler->Flush(&op);
  *out = results.results;
  return op.stats();
}

}  // namespace

int main() {
  WorkloadConfig workload;
  workload.num_events = 100000;
  workload.events_per_second = 8000.0;  // Bursty inter-click gaps (Poisson).
  workload.num_keys = 200;              // Users.
  workload.key_zipf_s = 0.8;            // Power users.
  workload.delay.model = DelayModel::kLogNormal;
  workload.delay.a = 6.0;  // Median ~0.4ms, tail to tens of ms.
  workload.delay.b = 1.5;
  workload.seed = 11;
  const GeneratedWorkload stream = GenerateWorkload(workload);
  std::printf("stream: %s\n",
              ComputeDisorderStats(stream.arrival_order).ToString().c_str());

  // Ground truth: sessionize the in-order stream.
  std::vector<WindowResult> truth;
  Sessionize(stream.InOrder(), DisorderHandlerSpec::PassThrough(),
             &truth);

  AqKSlack::Options aq;
  aq.target_quality = 0.98;
  std::vector<WindowResult> with_reorder, without_reorder;
  const auto s_with = Sessionize(stream.arrival_order,
                                 DisorderHandlerSpec::Aq(aq), &with_reorder);
  const auto s_without =
      Sessionize(stream.arrival_order,
                 DisorderHandlerSpec::PassThrough(), &without_reorder);

  std::printf("\ntrue sessions:                 %zu\n", truth.size());
  std::printf("with quality-driven reordering: %zu  (dropped clicks: %lld)\n",
              with_reorder.size(),
              static_cast<long long>(s_with.late_dropped));
  std::printf("without reordering:             %zu  (dropped clicks: %lld)\n",
              without_reorder.size(),
              static_cast<long long>(s_without.late_dropped));
  std::printf(
      "\nWithout reordering, late clicks are lost and long sessions split "
      "at\nthe points where their tuples were shed — session counts and "
      "lengths drift.\n");
  return 0;
}
