/// Scenario: multi-tenant analytics over one ingest stream.
///
/// One metrics stream feeds several teams' continuous queries, each with
/// its own accuracy contract: alerting wants 85% fast, billing wants 99%
/// whatever it costs, and a capacity dashboard has a hard freshness budget
/// (latency-constrained rather than quality-constrained). The example runs
/// the mixed query set both independently and behind a shared buffer, and
/// prints the bill: who pays what, under which plan.

#include <cstdio>
#include <iostream>

#include "common/table_writer.h"
#include "core/multi_query.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/generator.h"

using namespace streamq;  // Example code only.

int main() {
  WorkloadConfig workload;
  workload.num_events = 120000;
  workload.events_per_second = 12000.0;
  workload.delay.model = DelayModel::kLogNormal;
  workload.delay.a = 9.3;
  workload.delay.b = 0.9;
  workload.seed = 21;
  const GeneratedWorkload stream = GenerateWorkload(workload);

  auto make_queries = [] {
    return std::vector<ContinuousQuery>{
        QueryBuilder("alerting(q>=0.85)")
            .Tumbling(Millis(100))
            .Aggregate("max")
            .QualityTarget(0.85)
            .Build(),
        QueryBuilder("billing(q>=0.99)")
            .Tumbling(Millis(100))
            .Aggregate("sum")
            .QualityTarget(0.99)
            .Build(),
        QueryBuilder("capacity(L<=10ms)")
            .Tumbling(Millis(100))
            .Aggregate("mean")
            .LatencyBudget(Millis(10))
            .Build(),
    };
  };

  TableWriter table("multi-tenant plans: independent vs shared buffering",
                    {"plan", "query", "quality", "buf_latency_mean",
                     "peak_buffer"});
  for (auto plan : {MultiQueryRunner::Plan::kIndependent,
                    MultiQueryRunner::Plan::kSharedHandler}) {
    MultiQueryRunner runner(plan);
    auto queries = make_queries();
    for (const ContinuousQuery& q : queries) runner.AddQuery(q);
    VectorSource source(stream.arrival_order);
    const auto reports = runner.Run(&source);

    for (size_t i = 0; i < reports.size(); ++i) {
      const OracleEvaluator oracle(stream.arrival_order,
                                   queries[i].window.window,
                                   queries[i].window.aggregate);
      const QualityReport quality =
          EvaluateQuality(reports[i].results, oracle);
      table.BeginRow();
      table.Cell(plan == MultiQueryRunner::Plan::kIndependent ? "independent"
                                                              : "shared");
      table.Cell(reports[i].query_name);
      table.Cell(quality.MeanQualityIncludingMissed(), 4);
      table.Cell(FormatDuration(static_cast<DurationUs>(
          reports[i].handler_stats.buffering_latency_us.mean())));
      table.Cell(reports[i].handler_stats.max_buffer_size);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nUnder the shared plan every query rides the strictest (billing) "
      "buffer:\nquality contracts all hold, memory is paid once, but "
      "alerting and capacity\nlose their low-latency edge — the trade-off "
      "R-F12 quantifies.\n");
  return 0;
}
