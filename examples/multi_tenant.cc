/// Scenario: multi-tenant analytics over one ingest stream.
///
/// One metrics stream feeds several teams' continuous queries, each with
/// its own accuracy contract: alerting wants 85% fast, billing wants 99%
/// whatever it costs, and a capacity dashboard has a hard freshness budget
/// (latency-constrained rather than quality-constrained). The example runs
/// the mixed query set both independently and behind a shared buffer, and
/// prints the bill: who pays what, under which plan.
///
/// Each tenant is described once as a SessionOptions — the same front door
/// the CLI and the network server use. The independent plan opens one
/// StreamSession per tenant; the shared plan hands the same option sets'
/// queries to MultiQueryRunner's shared-handler engine.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "core/multi_query.h"
#include "core/session_options.h"
#include "core/stream_session.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/generator.h"

using namespace streamq;  // Example code only.

int main() {
  WorkloadConfig workload;
  workload.num_events = 120000;
  workload.events_per_second = 12000.0;
  workload.delay.model = DelayModel::kLogNormal;
  workload.delay.a = 9.3;
  workload.delay.b = 0.9;
  workload.seed = 21;
  const GeneratedWorkload stream = GenerateWorkload(workload);

  std::vector<SessionOptions> tenants;
  tenants.push_back(SessionOptions()
                        .Name("alerting(q>=0.85)")
                        .Window(100)
                        .Aggregate("max")
                        .Strategy("aq")
                        .QualityTarget(0.85));
  tenants.push_back(SessionOptions()
                        .Name("billing(q>=0.99)")
                        .Window(100)
                        .Aggregate("sum")
                        .Strategy("aq")
                        .QualityTarget(0.99));
  tenants.push_back(SessionOptions()
                        .Name("capacity(L<=10ms)")
                        .Window(100)
                        .Aggregate("mean")
                        .Strategy("lb")
                        .LatencyBudget(10));

  TableWriter table("multi-tenant plans: independent vs shared buffering",
                    {"plan", "query", "quality", "buf_latency_mean",
                     "peak_buffer"});

  auto add_row = [&](const char* plan, const RunReport& report,
                     const ContinuousQuery& query) {
    const OracleEvaluator oracle(stream.arrival_order, query.window.window,
                                 query.window.aggregate);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    table.BeginRow();
    table.Cell(plan);
    table.Cell(report.query_name);
    table.Cell(quality.MeanQualityIncludingMissed(), 4);
    table.Cell(FormatDuration(static_cast<DurationUs>(
        report.handler_stats.buffering_latency_us.mean())));
    table.Cell(report.handler_stats.max_buffer_size);
  };

  // Independent plan: one StreamSession per tenant, each with its own
  // buffer, fed the same stream.
  for (const SessionOptions& options : tenants) {
    auto session = StreamSession::Open(options);
    if (!session.ok()) {
      std::fprintf(stderr, "open %s: %s\n", options.name.c_str(),
                   session.status().ToString().c_str());
      return 1;
    }
    VectorSource source(stream.arrival_order);
    const RunReport report = session.value()->Run(&source);
    add_row("independent", report, session.value()->query());
  }

  // Shared plan: every tenant rides one buffer sized for the strictest
  // contract; queries come from the same SessionOptions.
  {
    MultiQueryRunner runner(MultiQueryRunner::Plan::kSharedHandler);
    std::vector<ContinuousQuery> queries;
    for (const SessionOptions& options : tenants) {
      auto query = options.BuildQuery();
      if (!query.ok()) {
        std::fprintf(stderr, "build %s: %s\n", options.name.c_str(),
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(query).value());
    }
    for (const ContinuousQuery& q : queries) runner.AddQuery(q);
    VectorSource source(stream.arrival_order);
    const auto reports = runner.Run(&source);
    for (size_t i = 0; i < reports.size(); ++i) {
      add_row("shared", reports[i], queries[i]);
    }
  }

  table.Print(std::cout);
  std::printf(
      "\nUnder the shared plan every query rides the strictest (billing) "
      "buffer:\nquality contracts all hold, memory is paid once, but "
      "alerting and capacity\nlose their low-latency edge — the trade-off "
      "R-F12 quantifies.\n");
  return 0;
}
