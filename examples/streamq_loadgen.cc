/// streamq_loadgen — multi-client load driver for streamq_server: registers
/// tenants, replays seeded workloads from concurrent connections, and
/// reports delivered throughput, ingest RTT percentiles, and every tenant's
/// final accounting (`in == out + late + shed` must hold, and does).
///
/// Usage:
///   streamq_loadgen --port=<p> [options] [session flags]
///   streamq_loadgen --serve [options]      (spin up an in-process server —
///                                           the single-command smoke test)
///   streamq_loadgen --port=<p> --shutdown  (stop a running server)
///
/// Load options:
///   --clients=<n>    concurrent ingest connections, default 1
///   --tenants=<n>    tenants registered (ids 1..n), default 1
///   --events=<n>     events per tenant, default 100000; 0 = run for
///                    --measure-s instead (duration mode)
///   --rate=<eps>     per-client pacing in events/s (0 = closed loop)
///   --warmup-s=<s>   throwaway warmup traffic seconds, default 0
///   --measure-s=<s>  duration-mode run length, default 5
///   --batch=<n>      events per ingest frame, default 512
///   --seed=<n>       workload seed (replayable), default 42
///   --keys=<n>       keys per tenant workload, default 64
///   --disorder=<ms>  mean exponential arrival delay, default 5
///   --workload-eps=<eps>  event-time rate of each workload, default 10000
///   --csv=<path>     append one result row (header written when new)
///
/// Resilience options (the R-F25 fault-tolerance experiment):
///   --retry             drive through ResilientClient: sequenced idempotent
///                       ingest + automatic reconnect (needs clients <=
///                       tenants); checksums stay identical to a fault-free
///                       run even under --chaos
///   --retry-attempts=<n>  attempts per operation, default 8
///   --chaos=<pct>       shorthand: reset/short-write/corrupt/truncate each
///                       at pct/100 probability per send
///   --chaos-reset=<p> --chaos-short-write=<p> --chaos-corrupt=<p>
///   --chaos-truncate=<p> --chaos-stall=<p>    per-op probabilities in [0,1)
///   --chaos-accept-close=<p>  serve mode only: the in-process server closes
///                       freshly accepted connections with probability p
///   --chaos-seed=<n>    fault-schedule seed (replayable), default 42
///
/// Admission-control options (forwarded to the --serve in-process server):
///   --quota-rate=<eps>      per-tenant token-bucket refill, 0 = unlimited
///   --quota-burst=<n>       bucket capacity, 0 = one second of rate
///   --quota-max-sessions=<n>   concurrent registered tenants, 0 = unlimited
///   --quota-max-buffered=<n>   per-tenant in-flight event cap, 0 = unlimited
///
/// Any session flag (--window, --strategy, --quality, --threads, ... — see
/// core/session_options.h) is forwarded into every tenant's RegisterQuery.
/// Exactly one run is one (clients, tenants) cell; sweeps loop outside.

#include <cstdio>
#include <optional>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/session_options.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"

using namespace streamq;  // Example/tool code only.

namespace {

const std::vector<std::string>& LoadGenFlags() {
  static const std::vector<std::string> kFlags = {
      "--port", "--serve", "--shutdown", "--clients", "--tenants",
      "--events", "--rate", "--warmup-s", "--measure-s", "--batch",
      "--seed", "--keys", "--disorder", "--workload-eps", "--csv",
      "--retry", "--retry-attempts", "--chaos", "--chaos-reset",
      "--chaos-short-write", "--chaos-corrupt", "--chaos-truncate",
      "--chaos-stall", "--chaos-accept-close", "--chaos-seed",
      "--quota-rate", "--quota-burst", "--quota-max-sessions",
      "--quota-max-buffered"};
  return kFlags;
}

bool AppendCsvRow(const std::string& path, const LoadGenOptions& options,
                  const LoadGenReport& report) {
  struct stat st;
  const bool fresh = ::stat(path.c_str(), &st) != 0 || st.st_size == 0;
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for append\n", path.c_str());
    return false;
  }
  if (fresh) {
    std::fprintf(f,
                 "clients,tenants,events_per_tenant,rate_eps,batch,seed,"
                 "disorder_ms,events_sent,wall_s,throughput_eps,rtt_p50_us,"
                 "rtt_p99_us,errors,identities_ok,deliveries_ok,migrations,"
                 "steals,faults,retries,reconnects,replayed,deduped,"
                 "throttled,checksum\n");
  }
  std::fprintf(f, "%d,%d,%lld,%.0f,%d,%llu,%.3f,%lld,%.4f,%.1f,%.1f,%.1f,"
                  "%lld,%d,%d,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,"
                  "%llu\n",
               options.clients, options.tenants,
               static_cast<long long>(options.events_per_tenant),
               options.rate_eps, options.batch,
               static_cast<unsigned long long>(options.seed),
               options.disorder_ms,
               static_cast<long long>(report.events_sent), report.wall_s,
               report.throughput_eps, report.rtt_p50_us, report.rtt_p99_us,
               static_cast<long long>(report.errors),
               report.all_identities_ok ? 1 : 0,
               report.all_deliveries_ok ? 1 : 0,
               static_cast<long long>(report.shard_migrations),
               static_cast<long long>(report.segments_stolen),
               static_cast<long long>(report.faults_injected),
               static_cast<long long>(report.retries),
               static_cast<long long>(report.reconnects),
               static_cast<long long>(report.replayed),
               static_cast<long long>(report.deduped),
               static_cast<long long>(report.throttled),
               static_cast<unsigned long long>(report.combined_checksum));
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Session flags first (they parameterize every tenant's RegisterQuery);
  // the leftovers are the loadgen's own knobs.
  LoadGenOptions options;
  options.session.Name("loadgen");
  std::vector<std::string> leftover;
  const Status parsed =
      SessionOptions::ParseArgs(argc, argv, &options.session, &leftover);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  bool serve = false;
  bool shutdown = false;
  bool have_port = false;
  std::string csv_path;
  ServerOptions server_options;
  for (const std::string& arg : leftover) {
    const size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    int64_t num = 0;
    double fnum = 0.0;
    auto want_int = [&](const char* name) {
      if (ParseInt64Strict(value, &num).ok()) return true;
      std::fprintf(stderr, "bad %s: %s\n", name, value.c_str());
      return false;
    };
    auto want_double = [&](const char* name) {
      if (ParseDoubleStrict(value, &fnum).ok()) return true;
      std::fprintf(stderr, "bad %s: %s\n", name, value.c_str());
      return false;
    };
    if (flag == "--port") {
      if (!want_int("--port") || num < 0 || num > 65535) return 2;
      options.port = static_cast<uint16_t>(num);
      have_port = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (flag == "--clients") {
      if (!want_int("--clients")) return 2;
      options.clients = static_cast<int>(num);
    } else if (flag == "--tenants") {
      if (!want_int("--tenants")) return 2;
      options.tenants = static_cast<int>(num);
    } else if (flag == "--events") {
      if (!want_int("--events")) return 2;
      options.events_per_tenant = num;
    } else if (flag == "--rate") {
      if (!want_double("--rate")) return 2;
      options.rate_eps = fnum;
    } else if (flag == "--warmup-s") {
      if (!want_double("--warmup-s")) return 2;
      options.warmup_s = fnum;
    } else if (flag == "--measure-s") {
      if (!want_double("--measure-s")) return 2;
      options.measure_s = fnum;
    } else if (flag == "--batch") {
      if (!want_int("--batch")) return 2;
      options.batch = static_cast<int>(num);
    } else if (flag == "--seed") {
      if (!want_int("--seed")) return 2;
      options.seed = static_cast<uint64_t>(num);
    } else if (flag == "--keys") {
      if (!want_int("--keys")) return 2;
      options.keys = num;
    } else if (flag == "--disorder") {
      if (!want_double("--disorder")) return 2;
      options.disorder_ms = fnum;
    } else if (flag == "--workload-eps") {
      if (!want_double("--workload-eps")) return 2;
      options.workload_eps = fnum;
    } else if (flag == "--csv") {
      csv_path = value;
    } else if (arg == "--retry") {
      options.retry = true;
    } else if (flag == "--retry-attempts") {
      if (!want_int("--retry-attempts")) return 2;
      options.retry_policy.max_attempts = static_cast<int>(num);
    } else if (flag == "--chaos") {
      if (!want_double("--chaos")) return 2;
      const double p = fnum / 100.0;
      options.chaos.reset_prob = p;
      options.chaos.short_write_prob = p;
      options.chaos.corrupt_prob = p;
      options.chaos.truncate_prob = p;
    } else if (flag == "--chaos-reset") {
      if (!want_double("--chaos-reset")) return 2;
      options.chaos.reset_prob = fnum;
    } else if (flag == "--chaos-short-write") {
      if (!want_double("--chaos-short-write")) return 2;
      options.chaos.short_write_prob = fnum;
    } else if (flag == "--chaos-corrupt") {
      if (!want_double("--chaos-corrupt")) return 2;
      options.chaos.corrupt_prob = fnum;
    } else if (flag == "--chaos-truncate") {
      if (!want_double("--chaos-truncate")) return 2;
      options.chaos.truncate_prob = fnum;
    } else if (flag == "--chaos-stall") {
      if (!want_double("--chaos-stall")) return 2;
      options.chaos.stall_prob = fnum;
    } else if (flag == "--chaos-accept-close") {
      if (!want_double("--chaos-accept-close")) return 2;
      options.chaos.accept_close_prob = fnum;
    } else if (flag == "--chaos-seed") {
      if (!want_int("--chaos-seed")) return 2;
      options.chaos.seed = static_cast<uint64_t>(num);
    } else if (flag == "--quota-rate") {
      if (!want_double("--quota-rate")) return 2;
      server_options.quota_rate_eps = fnum;
    } else if (flag == "--quota-burst") {
      if (!want_double("--quota-burst")) return 2;
      server_options.quota_burst = fnum;
    } else if (flag == "--quota-max-sessions") {
      if (!want_int("--quota-max-sessions")) return 2;
      server_options.quota_max_sessions = num;
    } else if (flag == "--quota-max-buffered") {
      if (!want_int("--quota-max-buffered")) return 2;
      server_options.quota_max_buffered = num;
    } else {
      const std::string hint = SuggestFlag(arg, LoadGenFlags());
      if (hint.empty()) {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      } else {
        std::fprintf(stderr, "unknown flag: %s (did you mean %s?)\n",
                     arg.c_str(), hint.c_str());
      }
      return 2;
    }
  }
  if (!serve && !have_port) {
    std::fprintf(stderr,
                 "usage: streamq_loadgen --port=<p> [options], or --serve "
                 "for an in-process server\n(see the header of "
                 "examples/streamq_loadgen.cc)\n");
    return 2;
  }

  if (shutdown) {
    auto client = StreamQClient::Connect(options.port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    const Status sent = client.value()->Shutdown();
    if (!sent.ok()) {
      std::fprintf(stderr, "shutdown: %s\n", sent.ToString().c_str());
      return 1;
    }
    std::printf("server shutdown requested\n");
    return 0;
  }

  // --serve: host the server in-process — one command, full loop, exactly
  // what the CI smoke step runs. Accept-close chaos is a server-side fault,
  // so it gets its own injector here (only that class: the client-side
  // injector inside RunLoadGen covers the rest, and the control connection
  // must not be corrupted once established).
  std::optional<ChaosInjector> accept_chaos;
  if (serve && options.chaos.accept_close_prob > 0.0) {
    ChaosSpec accept_spec;
    accept_spec.seed = options.chaos.seed;
    accept_spec.accept_close_prob = options.chaos.accept_close_prob;
    accept_chaos.emplace(accept_spec);
    server_options.chaos = &*accept_chaos;
  }
  StreamQServer server(server_options);
  if (serve) {
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "in-process server: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    options.port = server.port();
    std::printf("in-process server on 127.0.0.1:%u\n", options.port);
  }

  auto report = RunLoadGen(options);
  if (serve) server.Stop();
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().Summary().c_str());
  for (const TenantOutcome& t : report.value().tenants) {
    std::printf("  tenant %u: %s\n", t.tenant, t.stats.ToString().c_str());
  }
  if (serve) {
    const ServerStats stats = server.stats();
    std::printf("server: %lld frames, %lld protocol errors, %lld "
                "application errors\n",
                static_cast<long long>(stats.frames_processed),
                static_cast<long long>(stats.protocol_errors),
                static_cast<long long>(stats.application_errors));
  }
  if (!csv_path.empty() &&
      !AppendCsvRow(csv_path, options, report.value())) {
    return 1;
  }
  // Exit status carries the verdict so shell harnesses can gate on it.
  if (!report.value().all_identities_ok ||
      !report.value().all_deliveries_ok || report.value().errors > 0) {
    std::fprintf(stderr, "FAILED: identity/delivery violation or errors\n");
    return 3;
  }
  return 0;
}
