/// streamq_server — the long-running streamq service: accepts the
/// length-prefixed frame protocol (src/net/frame.h) on localhost TCP and
/// runs one isolated StreamSession per registered tenant.
///
/// Usage:
///   streamq_server [--port=<p>] [--max-frame-mb=<n>] [--quota-*] [--quiet]
///
///   --port=<p>          listen port on 127.0.0.1 (default 0 = ephemeral;
///                       the bound port is printed either way)
///   --max-frame-mb=<n>  per-frame payload cap in MiB, default 16
///   --quota-rate=<eps>  per-tenant token-bucket ingest rate; overflow gets
///                       a kOverloaded reply with retry-after (0 = off)
///   --quota-burst=<n>   token-bucket capacity (0 = one second of rate)
///   --quota-max-sessions=<n>   concurrent registered tenants (0 = off)
///   --quota-max-buffered=<n>   per-tenant in-flight event cap (0 = off)
///   --quiet             suppress the final stats line
///
/// The process runs until a client sends a kShutdown frame (e.g.
/// `streamq_loadgen --shutdown`) or it receives SIGINT/SIGTERM. Query
/// registration happens over the wire: RegisterQuery frames carry the same
/// `--flag=value` session vocabulary the CLI parses, so anything the CLI
/// can run, a tenant can register.

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "core/session_options.h"
#include "net/server.h"

using namespace streamq;  // Example/tool code only.

namespace {

StreamQServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

const std::vector<std::string>& ServerFlags() {
  static const std::vector<std::string> kFlags = {
      "--port", "--max-frame-mb", "--quota-rate", "--quota-burst",
      "--quota-max-sessions", "--quota-max-buffered", "--quiet"};
  return kFlags;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    int64_t num = 0;
    if (flag == "--port") {
      if (!ParseInt64Strict(value, &num).ok() || num < 0 || num > 65535) {
        std::fprintf(stderr, "bad --port: %s\n", value.c_str());
        return 2;
      }
      options.port = static_cast<uint16_t>(num);
    } else if (flag == "--max-frame-mb") {
      if (!ParseInt64Strict(value, &num).ok() || num < 1) {
        std::fprintf(stderr, "bad --max-frame-mb: %s\n", value.c_str());
        return 2;
      }
      options.max_frame_payload = static_cast<size_t>(num) << 20;
    } else if (flag == "--quota-rate") {
      double rate = 0.0;
      if (!ParseDoubleStrict(value, &rate).ok() || rate < 0.0) {
        std::fprintf(stderr, "bad --quota-rate: %s\n", value.c_str());
        return 2;
      }
      options.quota_rate_eps = rate;
    } else if (flag == "--quota-burst") {
      double burst = 0.0;
      if (!ParseDoubleStrict(value, &burst).ok() || burst < 0.0) {
        std::fprintf(stderr, "bad --quota-burst: %s\n", value.c_str());
        return 2;
      }
      options.quota_burst = burst;
    } else if (flag == "--quota-max-sessions") {
      if (!ParseInt64Strict(value, &num).ok() || num < 0) {
        std::fprintf(stderr, "bad --quota-max-sessions: %s\n", value.c_str());
        return 2;
      }
      options.quota_max_sessions = num;
    } else if (flag == "--quota-max-buffered") {
      if (!ParseInt64Strict(value, &num).ok() || num < 0) {
        std::fprintf(stderr, "bad --quota-max-buffered: %s\n", value.c_str());
        return 2;
      }
      options.quota_max_buffered = num;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      const std::string hint = SuggestFlag(arg, ServerFlags());
      if (hint.empty()) {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      } else {
        std::fprintf(stderr, "unknown flag: %s (did you mean %s?)\n",
                     arg.c_str(), hint.c_str());
      }
      return 2;
    }
  }

  StreamQServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // The port line is machine-readable on purpose: harnesses launch with
  // --port=0 and scrape the bound port from the first stdout line.
  std::printf("streamq_server listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  server.WaitForShutdownRequest();
  server.Stop();
  g_server = nullptr;

  if (!quiet) {
    const ServerStats stats = server.stats();
    std::printf(
        "served %lld connection(s), %lld frame(s), %lld event(s); "
        "%lld tenant(s) registered, %lld unregistered; "
        "%lld protocol error(s), %lld application error(s)\n",
        static_cast<long long>(stats.connections_accepted),
        static_cast<long long>(stats.frames_processed),
        static_cast<long long>(stats.events_ingested),
        static_cast<long long>(stats.tenants_registered),
        static_cast<long long>(stats.tenants_unregistered),
        static_cast<long long>(stats.protocol_errors),
        static_cast<long long>(stats.application_errors));
  }
  return 0;
}
