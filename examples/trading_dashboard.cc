/// Scenario: live trading dashboard over an out-of-order trade feed.
///
/// Trades for 16 symbols arrive from multiple gateways with heavy-tailed
/// (Pareto) delays. The dashboard shows, per second: traded volume (sum),
/// the max trade price, and the p90 trade price of the last second.
///
/// Two consumer profiles run side by side:
///  * "live view": speculative — show numbers instantly, silently amend
///    them as stragglers land (pass-through + allowed lateness);
///  * "compliance": quality-driven — publish once, when the number is at
///    least 99% right, as early as that allows (AQ-K-slack).
///
/// The example prints both profiles' freshness/accuracy/amendment counts —
/// the latency-vs-quality contract made concrete.

#include <cstdio>
#include <iostream>

#include "common/table_writer.h"
#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/generator.h"

using namespace streamq;  // Example code only.

int main() {
  WorkloadConfig workload;
  workload.num_events = 150000;
  workload.events_per_second = 15000.0;
  workload.num_keys = 16;        // Symbols.
  workload.key_zipf_s = 1.1;     // A few hot symbols dominate.
  workload.value.model = ValueModel::kRandomWalk;  // Price path.
  workload.value.a = 100.0;
  workload.value.b = 0.05;
  workload.delay.model = DelayModel::kPareto;
  workload.delay.a = 1000.0;
  workload.delay.b = 1.6;
  workload.seed = 99;
  const GeneratedWorkload stream = GenerateWorkload(workload);

  const char* aggregates[] = {"sum", "max", "quantile:0.9"};

  TableWriter table("trading dashboard: live view vs compliance feed",
                    {"aggregate", "profile", "first_answer_quality",
                     "final_quality", "answer_staleness_p95", "amendments"});

  for (const char* agg : aggregates) {
    const ContinuousQuery queries[] = {
        QueryBuilder("live-view")
            .Tumbling(Seconds(1))
            .Aggregate(agg)
            .NoDisorderHandling()
            .AllowedLateness(Seconds(30))
            .RevisionPerUpdate(false)  // Amend at most once per window.
            .Build(),
        QueryBuilder("compliance")
            .Tumbling(Seconds(1))
            .Aggregate(agg)
            .QualityTarget(0.99)
            .Build(),
    };
    const OracleEvaluator oracle(stream.arrival_order,
                                 queries[0].window.window,
                                 queries[0].window.aggregate);
    for (const ContinuousQuery& query : queries) {
      QueryExecutor executor(query);
      VectorSource source(stream.arrival_order);
      const RunReport report = executor.Run(&source);

      const QualityReport first = EvaluateQuality(report.results, oracle);
      QualityEvalOptions final_opts;
      final_opts.use_final_emission = true;
      const QualityReport final_q =
          EvaluateQuality(report.results, oracle, final_opts);

      table.BeginRow();
      table.Cell(agg);
      table.Cell(query.name);
      table.Cell(first.MeanQualityIncludingMissed(), 4);
      table.Cell(final_q.MeanQualityIncludingMissed(), 4);
      table.Cell(FormatDuration(
          static_cast<DurationUs>(first.response_latency_us.p95)));
      table.Cell(report.window_stats.revisions);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: the live view answers instantly but its first numbers are "
      "approximations\n(amended later); the compliance feed buffers just "
      "long enough for 99%% accuracy.\n");
  return 0;
}
